package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// classDocXML is an instance of the class schema (Figure 1 of the
// paper), the shared fixture of the endpoint tests.
const classDocXML = `<db>
  <class><cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>
    </prereq></regular></type>
  </class>
</db>`

// testServer starts a daemon on a loopback port and tears it down with
// the test.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// postJSON posts body (marshaled) to the server path and decodes the
// JSON response.
func postJSON(t *testing.T, s *Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+s.Addr()+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", path, err)
	}
	var out map[string]any
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("POST %s: invalid JSON response %q: %v", path, raw, err)
		}
	}
	return resp, out
}

// errorCode extracts the error envelope code.
func errorCode(t *testing.T, body map[string]any) string {
	t.Helper()
	e, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("response has no error envelope: %v", body)
	}
	code, _ := e["code"].(string)
	return code
}

func classPair() schemaPair {
	return schemaPair{
		SourceDTD: workload.ClassDTD().String(),
		TargetDTD: workload.SchoolDTD().String(),
	}
}

// TestEndToEndPipeline drives the paper's full loop over HTTP: find an
// embedding, translate a query across it, migrate a document forward
// and back, and check invertibility.
func TestEndToEndPipeline(t *testing.T) {
	s := testServer(t, Config{})

	resp, body := postJSON(t, s, "/v1/embed", EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60})
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/embed status = %d, body %v", resp.StatusCode, body)
	}
	embText, _ := body["embedding"].(string)
	if !strings.Contains(embText, "type class ->") {
		t.Fatalf("embed response carries no mapping text: %v", body)
	}
	if cached, _ := body["cached"].(bool); cached {
		t.Error("first embed reported cached=true")
	}

	resp, body = postJSON(t, s, "/v1/translate", TranslateRequest{
		schemaPair: classPair(),
		Embedding:  embText,
		Query:      `class/cno/text()`,
		ShowRegex:  true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/translate status = %d, body %v", resp.StatusCode, body)
	}
	if sz, _ := body["automaton_size"].(float64); sz <= 0 {
		t.Errorf("automaton_size = %v, want > 0", body["automaton_size"])
	}

	resp, body = postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: classPair(),
		Embedding:  embText,
		Document:   classDocXML,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/migrate status = %d, body %v", resp.StatusCode, body)
	}
	migrated, _ := body["document"].(string)
	if migrated == "" {
		t.Fatal("migrate returned an empty document")
	}
	if attempts, _ := body["attempts"].(float64); attempts != 1 {
		t.Errorf("attempts = %v, want 1 (no faults injected)", body["attempts"])
	}

	// Round-trip: σd⁻¹(σd(T)) = T.
	resp, body = postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: classPair(),
		Embedding:  embText,
		Document:   migrated,
		Invert:     true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("invert migrate status = %d, body %v", resp.StatusCode, body)
	}
	back, _ := body["document"].(string)
	want, err := xmltree.ParseString(classDocXML)
	if err != nil {
		t.Fatal(err)
	}
	got, err := xmltree.ParseString(back)
	if err != nil {
		t.Fatalf("inverted document does not re-parse: %v", err)
	}
	if !xmltree.Equal(want, got) {
		t.Errorf("invert(migrate(T)) != T:\n%s", back)
	}

	// The second translate over the same pair reuses the resident
	// artifacts.
	resp, body = postJSON(t, s, "/v1/translate", TranslateRequest{
		schemaPair: classPair(),
		Embedding:  embText,
		Query:      `class/title/text()`,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("second translate status = %d", resp.StatusCode)
	}
	if cached, _ := body["cached"].(bool); !cached {
		t.Error("second request over the same pair missed the artifact cache")
	}
}

// TestEmbedCachedSecondRequest: an identical embed request is served
// from the artifact cache.
func TestEmbedCachedSecondRequest(t *testing.T) {
	s := testServer(t, Config{})
	req := EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60}

	hitsBefore := mCacheHits.Value()
	resp, body := postJSON(t, s, "/v1/embed", req)
	if resp.StatusCode != 200 {
		t.Fatalf("cold embed status = %d: %v", resp.StatusCode, body)
	}
	cold, _ := body["embedding"].(string)

	resp, body = postJSON(t, s, "/v1/embed", req)
	if resp.StatusCode != 200 {
		t.Fatalf("warm embed status = %d", resp.StatusCode)
	}
	if cached, _ := body["cached"].(bool); !cached {
		t.Error("second identical embed not served from cache")
	}
	if warm, _ := body["embedding"].(string); warm != cold {
		t.Error("cached embed returned a different mapping")
	}
	if mCacheHits.Value() == hitsBefore {
		t.Error("xse_server_cache_hits_total did not increase")
	}

	// A different seed is a different artifact.
	resp, body = postJSON(t, s, "/v1/embed", EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 61})
	if resp.StatusCode != 200 {
		t.Fatalf("distinct-options embed status = %d", resp.StatusCode)
	}
	if cached, _ := body["cached"].(bool); cached {
		t.Error("distinct options wrongly shared a cache entry")
	}
}

// TestEmbedNotFound: a target that cannot embed the source answers
// 422 with code not_found (the CLI's exit 5).
func TestEmbedNotFound(t *testing.T) {
	s := testServer(t, Config{})
	resp, body := postJSON(t, s, "/v1/embed", EmbedRequest{
		schemaPair: schemaPair{
			SourceDTD: workload.ClassDTD().String(),
			TargetDTD: "<!ELEMENT lone (#PCDATA)>",
		},
		Heuristic: "exact",
	})
	if resp.StatusCode != 422 {
		t.Fatalf("status = %d, want 422; body %v", resp.StatusCode, body)
	}
	if code := errorCode(t, body); code != "not_found" {
		t.Errorf("code = %q, want not_found", code)
	}
}

// TestErrorStatuses covers the error→status table rows reachable
// without chaos injection.
func TestErrorStatuses(t *testing.T) {
	s := testServer(t, Config{Limits: guard.Limits{MaxInputBytes: 1 << 16}})
	addr := "http://" + s.Addr()

	t.Run("malformed JSON 400", func(t *testing.T) {
		resp, err := http.Post(addr+"/v1/translate", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown field 400", func(t *testing.T) {
		resp, _ := postJSON(t, s, "/v1/migrate", map[string]any{"bogus_field": 1})
		if resp.StatusCode != 400 {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("missing query 400", func(t *testing.T) {
		resp, body := postJSON(t, s, "/v1/translate", TranslateRequest{
			schemaPair: classPair(), Embedding: workload.ClassEmbedding().Marshal(),
		})
		if resp.StatusCode != 400 || errorCode(t, body) != "invalid" {
			t.Errorf("status = %d code = %q, want 400 invalid", resp.StatusCode, errorCode(t, body))
		}
	})
	t.Run("malformed DTD 400", func(t *testing.T) {
		resp, _ := postJSON(t, s, "/v1/embed", EmbedRequest{
			schemaPair: schemaPair{SourceDTD: "<!ELEMENT", TargetDTD: "<!ELEMENT a (#PCDATA)>"},
		})
		if resp.StatusCode != 400 {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("GET 405", func(t *testing.T) {
		resp, err := http.Get(addr + "/v1/embed")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 405 {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != "POST" {
			t.Errorf("Allow = %q, want POST", allow)
		}
	})
	t.Run("oversized body 413", func(t *testing.T) {
		big := `{"document":"` + strings.Repeat("x", 1<<17)
		resp, err := http.Post(addr+"/v1/migrate", "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 413 {
			t.Errorf("status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("per-request limit 413", func(t *testing.T) {
		resp, body := postJSON(t, s, "/v1/migrate", MigrateRequest{
			schemaPair: classPair(),
			Embedding:  workload.ClassEmbedding().Marshal(),
			Document:   classDocXML,
			Budget:     Budget{MaxNodes: 2},
		})
		if resp.StatusCode != 413 || errorCode(t, body) != "limit" {
			t.Errorf("status = %d code = %q, want 413 limit", resp.StatusCode, errorCode(t, body))
		}
	})
	t.Run("unknown path 404", func(t *testing.T) {
		resp, err := http.Get(addr + "/v1/nothing")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("status = %d, want 404", resp.StatusCode)
		}
	})
}

// TestHealthAndMetricsEndpoints: the probe and observability surfaces
// share the service listener.
func TestHealthAndMetricsEndpoints(t *testing.T) {
	s := testServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/metrics.json", "/debug/vars"} {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		if path == "/metrics" && !bytes.Contains(body, []byte("xse_server_requests_total")) {
			t.Errorf("/metrics does not expose the server family:\n%.400s", body)
		}
	}
}

// TestArtifactCacheEviction: the artifact home is bounded; the LRU
// entry is evicted and rebuilt on return.
func TestArtifactCacheEviction(t *testing.T) {
	s := testServer(t, Config{CacheSize: 1})
	reqA := EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60}
	reqB := EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 61}

	if resp, _ := postJSON(t, s, "/v1/embed", reqA); resp.StatusCode != 200 {
		t.Fatalf("embed A: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, s, "/v1/embed", reqB); resp.StatusCode != 200 {
		t.Fatalf("embed B: %d", resp.StatusCode)
	}
	resp, body := postJSON(t, s, "/v1/embed", reqA)
	if resp.StatusCode != 200 {
		t.Fatalf("embed A again: %d", resp.StatusCode)
	}
	if cached, _ := body["cached"].(bool); cached {
		t.Error("evicted artifact reported cached=true")
	}
	if got := s.artifacts.len(); got > 1 {
		t.Errorf("artifact cache holds %d entries, want <= 1", got)
	}
}

// TestBudgetTimeout: a request-level wall-clock budget cuts a slow
// stage short with 504/timeout.
func TestBudgetTimeout(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: 10 * time.Second,
	}))
	defer restore()
	s := testServer(t, Config{Retries: -1})

	start := time.Now()
	resp, body := postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: classPair(),
		Embedding:  workload.ClassEmbedding().Marshal(),
		Document:   classDocXML,
		Budget:     Budget{TimeoutMS: 100},
	})
	if resp.StatusCode != 504 || errorCode(t, body) != "timeout" {
		t.Fatalf("status = %d code = %q, want 504 timeout", resp.StatusCode, errorCode(t, body))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("budget did not bound the request (took %s)", elapsed)
	}
}

// TestTimeoutClampedToMax: a request cannot buy more time than
// -max-timeout allows.
func TestTimeoutClampedToMax(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: time.Hour,
	}))
	defer restore()
	s := testServer(t, Config{MaxTimeout: 100 * time.Millisecond, Retries: -1})

	start := time.Now()
	resp, _ := postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: classPair(),
		Embedding:  workload.ClassEmbedding().Marshal(),
		Document:   classDocXML,
		Budget:     Budget{TimeoutMS: int(time.Hour / time.Millisecond)},
	})
	if resp.StatusCode != 504 {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("max-timeout clamp ineffective (took %s)", elapsed)
	}
}

func TestBudgetTighten(t *testing.T) {
	base := guard.Limits{MaxInputBytes: 1000, MaxNodes: -1, MaxDepth: 50, MaxTypes: 10}
	got := Budget{MaxInputBytes: 2000, MaxNodes: 7, MaxDepth: 20}.tighten(base)
	if got.MaxInputBytes != 1000 {
		t.Errorf("MaxInputBytes = %d, want 1000 (request may not widen)", got.MaxInputBytes)
	}
	if got.MaxNodes != 7 {
		t.Errorf("MaxNodes = %d, want 7 (request bounds an unlimited base)", got.MaxNodes)
	}
	if got.MaxDepth != 20 {
		t.Errorf("MaxDepth = %d, want 20 (request tightens)", got.MaxDepth)
	}
	if got.MaxTypes != 10 {
		t.Errorf("MaxTypes = %d, want 10 (unset request field keeps base)", got.MaxTypes)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MaxInFlight <= 0 || c.MaxQueue <= 0 || c.QueueWait <= 0 ||
		c.DefaultTimeout <= 0 || c.MaxTimeout <= 0 || c.RetryBase <= 0 || c.CacheSize <= 0 {
		t.Errorf("zero Config left unresolved fields: %+v", c)
	}
	if c.Retries != 2 {
		t.Errorf("Retries = %d, want 2", c.Retries)
	}
	if got := (Config{Retries: -1}).withDefaults().Retries; got != 0 {
		t.Errorf("Retries -1 resolves to %d, want 0 (disabled)", got)
	}
	if got := (Config{MaxQueue: -1}).withDefaults().MaxQueue; got != 0 {
		t.Errorf("MaxQueue -1 resolves to %d, want 0 (no queue)", got)
	}
}

func TestArtifactKeyFraming(t *testing.T) {
	if artifactKey("ab", "c") == artifactKey("a", "bc") {
		t.Error("length framing failed: concatenation collision")
	}
	if artifactKey("x") != artifactKey("x") {
		t.Error("artifactKey not deterministic")
	}
}

// ExampleServer documents minimal programmatic use.
func ExampleServer() {
	s := New(Config{Addr: "127.0.0.1:0", Log: io.Discard})
	if err := s.Start(); err != nil {
		fmt.Println("start:", err)
		return
	}
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err == nil {
		fmt.Println(resp.StatusCode)
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	// Output: 200
}

// postMultipart posts a multipart /v1/migrate request: config fields
// first, the document part last, exactly as the streaming form
// requires.
func postMultipart(t *testing.T, s *Server, fields map[string]string, doc string) (*http.Response, string) {
	t.Helper()
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for name, val := range fields {
		if err := mw.WriteField(name, val); err != nil {
			t.Fatal(err)
		}
	}
	if doc != "" {
		fw, err := mw.CreateFormFile("document", "doc.xml")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.WriteString(fw, doc); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// TestMigrateMultipartStream: the multipart form streams the document
// through σd and answers raw XML, byte-identical to the JSON form's
// document field.
func TestMigrateMultipartStream(t *testing.T) {
	s := testServer(t, Config{})
	emb := workload.ClassEmbedding()
	pair := classPair()
	fields := map[string]string{
		"source_dtd": pair.SourceDTD,
		"target_dtd": pair.TargetDTD,
		"embedding":  emb.Marshal(),
	}

	resp, body := postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: pair, Embedding: emb.Marshal(), Document: classDocXML,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("JSON migrate status = %d, body %v", resp.StatusCode, body)
	}
	want, _ := body["document"].(string)
	if want == "" {
		t.Fatal("JSON migrate returned no document")
	}

	mresp, got := postMultipart(t, s, fields, classDocXML)
	if mresp.StatusCode != 200 {
		t.Fatalf("multipart migrate status = %d, body %s", mresp.StatusCode, got)
	}
	if ct := mresp.Header.Get("Content-Type"); ct != "application/xml" {
		t.Errorf("Content-Type = %q, want application/xml", ct)
	}
	if got != want {
		t.Errorf("multipart output differs from JSON form:\n got: %q\nwant: %q", got, want)
	}

	t.Run("nonconforming document", func(t *testing.T) {
		resp, body := postMultipart(t, s, fields, "<db><wrong/></db>")
		if resp.StatusCode != 400 {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		if !strings.Contains(body, "instance mapping") {
			t.Errorf("error body %q does not name the mapping stage", body)
		}
	})
	t.Run("malformed document", func(t *testing.T) {
		resp, body := postMultipart(t, s, fields, "<db><cl<")
		if resp.StatusCode != 400 {
			t.Fatalf("status = %d, want 400: %s", resp.StatusCode, body)
		}
		if !strings.Contains(body, "document:") {
			t.Errorf("error body %q does not name the document", body)
		}
	})
	t.Run("missing document part", func(t *testing.T) {
		resp, body := postMultipart(t, s, fields, "")
		if resp.StatusCode != 400 || !strings.Contains(body, "no document part") {
			t.Fatalf("status = %d body = %s, want 400 no-document-part", resp.StatusCode, body)
		}
	})
	t.Run("budget limit", func(t *testing.T) {
		withBudget := map[string]string{}
		for k, v := range fields {
			withBudget[k] = v
		}
		withBudget["budget"] = `{"max_input_bytes": 16}`
		resp, body := postMultipart(t, s, withBudget, classDocXML)
		if resp.StatusCode != 413 {
			t.Fatalf("status = %d, want 413: %s", resp.StatusCode, body)
		}
	})
}

// TestMigrateStreamTreeParity: the JSON forward path (streaming) and
// an explicit tree-path migration agree byte for byte.
func TestMigrateStreamTreeParity(t *testing.T) {
	s := testServer(t, Config{})
	emb := workload.ClassEmbedding()
	resp, body := postJSON(t, s, "/v1/migrate", MigrateRequest{
		schemaPair: classPair(), Embedding: emb.Marshal(), Document: classDocXML,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("migrate status = %d, body %v", resp.StatusCode, body)
	}
	got, _ := body["document"].(string)

	doc, err := xmltree.ParseString(classDocXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := emb.Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Tree.String() {
		t.Errorf("streamed response differs from tree path:\n got: %q\nwant: %q", got, res.Tree.String())
	}
}
