package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Budget is the per-request resource envelope. Every field is
// optional; a request can only tighten the server's own caps, never
// widen them.
type Budget struct {
	// TimeoutMS is the wall-clock budget in milliseconds (default the
	// server's -default-timeout, capped at -max-timeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxInputBytes / MaxNodes / MaxDepth / MaxTypes tighten the
	// corresponding guard.Limits bound for this request's parses.
	MaxInputBytes int `json:"max_input_bytes,omitempty"`
	MaxNodes      int `json:"max_nodes,omitempty"`
	MaxDepth      int `json:"max_depth,omitempty"`
	MaxTypes      int `json:"max_types,omitempty"`
}

// tighten returns base with every positive request field lowered to
// the request's value (never raised: min of the two where base is
// bounded, the request value where base is unlimited).
func (b Budget) tighten(base guard.Limits) guard.Limits {
	clamp := func(req, base int) int {
		if req <= 0 {
			return base
		}
		if base > 0 && base < req {
			return base
		}
		return req
	}
	base.MaxInputBytes = clamp(b.MaxInputBytes, base.MaxInputBytes)
	base.MaxNodes = clamp(b.MaxNodes, base.MaxNodes)
	base.MaxDepth = clamp(b.MaxDepth, base.MaxDepth)
	base.MaxTypes = clamp(b.MaxTypes, base.MaxTypes)
	return base
}

// budgetCtx derives the request's execution context and limits: the
// wall-clock deadline (request value capped by MaxTimeout, default
// DefaultTimeout) and the tightened guard.Limits.
func (s *Server) budgetCtx(ctx context.Context, b Budget) (context.Context, context.CancelFunc, guard.Limits) {
	d := s.cfg.DefaultTimeout
	if b.TimeoutMS > 0 {
		d = time.Duration(b.TimeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	obs.EventFrom(ctx).Dur("timeout_ms", d)
	ctx, cancel := context.WithTimeout(ctx, d)
	return ctx, cancel, b.tighten(s.cfg.Limits)
}

// decodeJSON decodes the request body strictly: unknown fields and
// trailing data are invalid input, and a body that trips the
// MaxBytesReader surfaces as a limit error.
func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return mbe
		}
		return badRequest("invalid JSON request: %v", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return badRequest("trailing data after JSON request object")
	}
	return nil
}

// schemaPair parses and names the source/target schemas shared by all
// three endpoints.
type schemaPair struct {
	SourceDTD  string `json:"source_dtd"`
	TargetDTD  string `json:"target_dtd"`
	SourceRoot string `json:"source_root,omitempty"`
	TargetRoot string `json:"target_root,omitempty"`
}

func (p schemaPair) parse(lim guard.Limits) (src, tgt *dtd.DTD, err error) {
	if p.SourceDTD == "" || p.TargetDTD == "" {
		return nil, nil, badRequest("source_dtd and target_dtd are required")
	}
	src, err = dtd.ParseLimits(p.SourceDTD, p.SourceRoot, lim)
	if err != nil {
		if isLimit(err) {
			return nil, nil, err
		}
		return nil, nil, badRequest("source_dtd: %v", err)
	}
	tgt, err = dtd.ParseLimits(p.TargetDTD, p.TargetRoot, lim)
	if err != nil {
		if isLimit(err) {
			return nil, nil, err
		}
		return nil, nil, badRequest("target_dtd: %v", err)
	}
	return src, tgt, nil
}

// isLimit keeps guard.LimitError its own class (413) when wrapping
// parse failures as 400s.
func isLimit(err error) bool {
	var le *guard.LimitError
	return errors.As(err, &le)
}

// --- /v1/embed ---

// EmbedRequest asks for an embedding of source into target.
type EmbedRequest struct {
	schemaPair
	// Att selects the similarity matrix: "lexical" (default) or
	// "uniform".
	Att string `json:"att,omitempty"`
	// Threshold is the lexical similarity cutoff (default 0.5).
	Threshold *float64 `json:"threshold,omitempty"`
	// Heuristic is "random" (default), "quality", "indepset" or
	// "exact".
	Heuristic string `json:"heuristic,omitempty"`
	// Seed drives the search's pseudo-random choices (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Restarts bounds random restarts (default 40, as xse-embed).
	Restarts int `json:"restarts,omitempty"`
	// Explain records the per-restart explainability ledger (heuristic,
	// seed, rejection counts by constraint class, abort reason) and
	// returns it in the response. Explained and unexplained runs are
	// cached as distinct artifacts.
	Explain bool   `json:"explain,omitempty"`
	Budget  Budget `json:"budget,omitempty"`
}

// EmbedResponse returns the embedding in the textual mapping format
// (feed it back to /v1/translate and /v1/migrate verbatim).
type EmbedResponse struct {
	Embedding string  `json:"embedding"`
	Quality   float64 `json:"quality"`
	Restarts  int     `json:"restarts"`
	Steps     int     `json:"steps"`
	// ElapsedMS is the search's own wall-clock cost — 0 when the
	// response came from the artifact cache.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Cached reports an artifact-cache hit: the search did not run.
	Cached bool `json:"cached"`
	// Ledger and Rejections are present only when the request set
	// explain: per-restart records and the aggregate rejection counts
	// by constraint class.
	Ledger     []search.RestartRecord `json:"ledger,omitempty"`
	Rejections *search.Rejections     `json:"rejections,omitempty"`
}

// embedArtifact is the cached outcome of one embed search.
type embedArtifact struct {
	text       string
	quality    float64
	restarts   int
	steps      int
	ledger     []search.RestartRecord
	rejections search.Rejections
}

func parseHeuristic(s string) (search.Heuristic, error) {
	switch strings.ToLower(s) {
	case "", "random":
		return search.Random, nil
	case "quality":
		return search.QualityOrdered, nil
	case "indepset":
		return search.IndepSet, nil
	case "exact":
		return search.Exact, nil
	}
	return 0, badRequest("unknown heuristic %q (want random, quality, indepset or exact)", s)
}

func (s *Server) handleEmbed(ctx context.Context, r *http.Request) (any, error) {
	var req EmbedRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	h, err := parseHeuristic(req.Heuristic)
	if err != nil {
		return nil, err
	}
	threshold := 0.5
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	switch req.Att {
	case "", "lexical", "uniform":
	default:
		return nil, badRequest("unknown att %q (want lexical or uniform)", req.Att)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	restarts := req.Restarts
	if restarts <= 0 {
		restarts = 40
	}

	bctx, cancel, lim := s.budgetCtx(ctx, req.Budget)
	defer cancel()

	key := artifactKey("embed", req.SourceDTD, req.TargetDTD, req.SourceRoot, req.TargetRoot,
		req.Att, fmt.Sprint(threshold), strings.ToLower(req.Heuristic), fmt.Sprint(seed), fmt.Sprint(restarts),
		fmt.Sprint(req.Explain))
	start := time.Now()
	val, hit, err := s.artifacts.get(bctx, key, func() (any, error) {
		src, tgt, err := req.schemaPair.parse(lim)
		if err != nil {
			return nil, err
		}
		var att *embedding.SimMatrix
		if req.Att == "uniform" {
			att = embedding.UniformSim(src, tgt)
		} else {
			att = match.Lexical(src, tgt, threshold)
		}
		// Chaos injection point: latency here makes the cold/warm
		// latency contrast deterministic in tests.
		if err := guard.Fault(bctx, "server.embed.search"); err != nil {
			return nil, err
		}
		res, err := search.FindCtx(bctx, src, tgt, att, search.Options{
			Heuristic:   h,
			Seed:        seed,
			MaxRestarts: restarts,
			Explain:     req.Explain,
		})
		if err != nil {
			return nil, err
		}
		if res.Embedding == nil {
			if res.Exhausted {
				return nil, notFound("no embedding exists within the search bounds")
			}
			return nil, notFound("no embedding found (budget exhausted; raise restarts or use att=uniform)")
		}
		return &embedArtifact{
			text:       res.Embedding.Marshal(),
			quality:    res.Quality,
			restarts:   res.Restarts,
			steps:      res.Steps,
			ledger:     res.Ledger,
			rejections: res.Rejections,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	if hit {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	art := val.(*embedArtifact)
	obs.EventFrom(ctx).
		Bool("cache_hit", hit).
		Str("heuristic", strings.ToLower(req.Heuristic)).
		Int("search_restarts", int64(art.restarts)).
		Int("search_steps", int64(art.steps))
	resp := &EmbedResponse{
		Embedding: art.text,
		Quality:   art.quality,
		Restarts:  art.restarts,
		Steps:     art.steps,
		Cached:    hit,
	}
	if req.Explain {
		resp.Ledger = art.ledger
		rej := art.rejections
		resp.Rejections = &rej
		obs.EventFrom(ctx).Int("rejections_total", int64(rej.Total()))
	}
	if !hit {
		resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	}
	return resp, nil
}

// --- shared pair artifacts for /v1/translate and /v1/migrate ---

// pairArtifacts is the compiled, shareable state of one
// (source DTD, target DTD, σ) triple: the validated embedding and its
// translation cache. It is built once per content hash and shared by
// every request that names the same triple.
type pairArtifacts struct {
	src, tgt *dtd.DTD
	sigma    *embedding.Embedding
	trans    *translate.Cache
	// prog is σd compiled for streaming: forward migrations run
	// documents through it token-by-token instead of building trees.
	prog *embedding.StreamProgram
}

func (s *Server) pairFor(ctx context.Context, p schemaPair, embText string, lim guard.Limits) (*pairArtifacts, bool, error) {
	if embText == "" {
		return nil, false, badRequest("embedding is required (obtain one from /v1/embed)")
	}
	key := artifactKey("pair", p.SourceDTD, p.TargetDTD, p.SourceRoot, p.TargetRoot, embText)
	val, hit, err := s.artifacts.get(ctx, key, func() (any, error) {
		src, tgt, err := p.parse(lim)
		if err != nil {
			return nil, err
		}
		sigma, err := embedding.Unmarshal(embText, src, tgt)
		if err != nil {
			return nil, badRequest("embedding: %v", err)
		}
		if err := sigma.Validate(nil); err != nil {
			return nil, badRequest("invalid embedding: %v", err)
		}
		prog, err := sigma.CompileStream()
		if err != nil {
			return nil, fmt.Errorf("internal error: compile streaming program: %w", err)
		}
		return &pairArtifacts{
			src:   src,
			tgt:   tgt,
			sigma: sigma,
			trans: translate.NewCache(s.cfg.TranslationsPerPair),
			prog:  prog,
		}, nil
	})
	if err != nil {
		return nil, false, err
	}
	if hit {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	return val.(*pairArtifacts), hit, nil
}

// --- /v1/translate ---

// TranslateRequest translates one X_R query across an embedding.
type TranslateRequest struct {
	schemaPair
	// Embedding is the mapping text from /v1/embed (or xse-embed).
	Embedding string `json:"embedding"`
	// Query is the regular XPath query over the source schema.
	Query string `json:"query"`
	// ShowRegex also expands the automaton back to regular XPath
	// (small automata only).
	ShowRegex bool `json:"show_regex,omitempty"`
	// NoOptimize keeps the raw translation, skipping the default-on
	// schema-aware ANFA optimizer (the differential baseline). The
	// two variants are cached as distinct artifacts.
	NoOptimize bool   `json:"no_optimize,omitempty"`
	Budget     Budget `json:"budget,omitempty"`
}

// TranslateResponse reports the translated automaton.
type TranslateResponse struct {
	Query         string `json:"query"`
	AutomatonSize int    `json:"automaton_size"`
	Regex         string `json:"regex,omitempty"`
	// Cached reports whether the schema-pair artifacts were already
	// resident (the translation itself may additionally hit the
	// per-pair translation cache — see xse_translate_cache_*).
	Cached bool `json:"cached"`
}

func (s *Server) handleTranslate(ctx context.Context, r *http.Request) (any, error) {
	var req TranslateRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Query == "" {
		return nil, badRequest("query is required")
	}
	bctx, cancel, lim := s.budgetCtx(ctx, req.Budget)
	defer cancel()

	pair, hit, err := s.pairFor(bctx, req.schemaPair, req.Embedding, lim)
	if err != nil {
		return nil, err
	}
	q, err := xpath.ParseLimits(req.Query, lim)
	if err != nil {
		if isLimit(err) {
			return nil, err
		}
		return nil, badRequest("query: %v", err)
	}
	if err := guard.Fault(bctx, "server.translate"); err != nil {
		return nil, err
	}
	auto, err := pair.trans.GetOpt(bctx, pair.sigma, q, translate.Options{NoOptimize: req.NoOptimize})
	if err != nil {
		return nil, err
	}
	obs.EventFrom(ctx).Bool("cache_hit", hit).Int("automaton_size", int64(auto.Size()))
	resp := &TranslateResponse{
		Query:         xpath.String(q),
		AutomatonSize: auto.Size(),
		Cached:        hit,
	}
	if req.ShowRegex {
		back, err := auto.ToRegex()
		if err == nil {
			resp.Regex = xpath.String(back)
		}
	}
	return resp, nil
}

// --- /v1/migrate ---

// MigrateRequest migrates one document through σd (or σd⁻¹ with
// Invert).
type MigrateRequest struct {
	schemaPair
	Embedding string `json:"embedding"`
	// Document is the XML instance to migrate.
	Document string `json:"document"`
	// Invert applies the inverse mapping σd⁻¹.
	Invert bool   `json:"invert,omitempty"`
	Budget Budget `json:"budget,omitempty"`
}

// MigrateResponse carries the migrated document.
type MigrateResponse struct {
	Document string `json:"document"`
	// Attempts is how many times the migrate stage ran (1 + retries
	// consumed on transient failures).
	Attempts int  `json:"attempts"`
	Cached   bool `json:"cached"`
}

func (s *Server) handleMigrate(ctx context.Context, r *http.Request) (any, error) {
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "multipart/form-data") {
		return s.handleMigrateMultipart(ctx, r)
	}
	var req MigrateRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if req.Document == "" {
		return nil, badRequest("document is required")
	}
	bctx, cancel, lim := s.budgetCtx(ctx, req.Budget)
	defer cancel()

	pair, hit, err := s.pairFor(bctx, req.schemaPair, req.Embedding, lim)
	if err != nil {
		return nil, err
	}

	if !req.Invert {
		// Forward path: stream the document through the compiled σd —
		// no input or output tree. The response buffer keeps the error
		// contract (a mid-stream fault still renders its proper status).
		var buf strings.Builder
		attempts, err := s.withRetry(bctx, func(ctx context.Context) error {
			if err := guard.Fault(ctx, "server.migrate"); err != nil {
				return err
			}
			buf.Reset()
			_, serr := pair.prog.Run(ctx, strings.NewReader(req.Document), &buf,
				embedding.StreamOptions{Limits: lim})
			return classifyStream(serr)
		})
		if err != nil {
			return nil, err
		}
		obs.EventFrom(ctx).Bool("cache_hit", hit).Int("attempts", int64(attempts))
		return &MigrateResponse{Document: buf.String(), Attempts: attempts, Cached: hit}, nil
	}

	doc, err := xmltree.ParseLimits(strings.NewReader(req.Document), lim)
	if err != nil {
		if isLimit(err) {
			return nil, err
		}
		return nil, badRequest("document: %v", err)
	}
	var out *xmltree.Tree
	attempts, err := s.withRetry(bctx, func(ctx context.Context) error {
		// Chaos injection point: the retry loop exists for transient
		// mid-migration failures, which fault plans simulate here.
		if err := guard.Fault(ctx, "server.migrate"); err != nil {
			return err
		}
		var err error
		out, err = pair.sigma.InvertCtx(ctx, doc)
		if err != nil {
			return badRequest("inverse mapping: %v", err).orWorse(err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if verr := out.Validate(pair.src); verr != nil {
		return nil, fmt.Errorf("internal error: output does not conform: %w", verr)
	}
	obs.EventFrom(ctx).Bool("cache_hit", hit).Int("attempts", int64(attempts))
	return &MigrateResponse{Document: out.String(), Attempts: attempts, Cached: hit}, nil
}

// classifyStream maps a streaming failure onto the endpoint's error
// classes: decoder faults are the "document:" 400, conformance faults
// the "instance mapping:" 400, and cancellation/limit errors keep
// their own classes (504/413) exactly as the tree path's orWorse does.
func classifyStream(serr error) error {
	if serr == nil {
		return nil
	}
	var se *embedding.StreamError
	if !errors.As(serr, &se) {
		return serr
	}
	switch se.Stage {
	case "parse":
		return badRequest("document: %v", se.Err).orWorse(se.Err)
	case "write":
		return fmt.Errorf("internal error: write output: %w", se.Err)
	}
	return badRequest("instance mapping: %v", se.Err).orWorse(se.Err)
}

// rawXML is a non-JSON endpoint result: the api wrapper writes it
// verbatim with the XML content type (used by multipart /v1/migrate).
type rawXML struct {
	body []byte
}

// handleMigrateMultipart is the streaming request form of /v1/migrate:
// a multipart/form-data body whose fields mirror the JSON request
// (source_dtd, target_dtd, source_root, target_root, embedding, and an
// optional budget part holding the JSON budget object), followed by a
// final "document" part. The document part is fed to the compiled σd
// directly off the wire — the request body is never buffered — and the
// migrated XML comes back raw (application/xml). Only forward
// migration streams; use the JSON form for σd⁻¹.
func (s *Server) handleMigrateMultipart(ctx context.Context, r *http.Request) (any, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, badRequest("invalid multipart request: %v", err)
	}
	fields := map[string]string{}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, badRequest("multipart request has no document part")
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, mbe
			}
			return nil, badRequest("invalid multipart request: %v", err)
		}
		name := part.FormName()
		if name != "document" {
			// Config fields are small; the body cap still bounds them.
			data, err := io.ReadAll(part)
			part.Close()
			if err != nil {
				var mbe *http.MaxBytesError
				if errors.As(err, &mbe) {
					return nil, mbe
				}
				return nil, badRequest("multipart field %q: %v", name, err)
			}
			fields[name] = string(data)
			continue
		}

		// All configuration must precede the document: from here on the
		// part reader streams straight into the engine.
		var budget Budget
		if b := fields["budget"]; b != "" {
			if err := json.Unmarshal([]byte(b), &budget); err != nil {
				part.Close()
				return nil, badRequest("budget: %v", err)
			}
		}
		bctx, cancel, lim := s.budgetCtx(ctx, budget)
		defer cancel()
		pair, _, err := s.pairFor(bctx, schemaPair{
			SourceDTD:  fields["source_dtd"],
			TargetDTD:  fields["target_dtd"],
			SourceRoot: fields["source_root"],
			TargetRoot: fields["target_root"],
		}, fields["embedding"], lim)
		if err != nil {
			part.Close()
			return nil, err
		}
		if err := guard.Fault(bctx, "server.migrate"); err != nil {
			part.Close()
			return nil, err
		}
		// The response is buffered (not the request): a conformance or
		// limit fault discovered mid-document must still produce its
		// proper status code, which is impossible once raw XML bytes
		// have been sent.
		var buf bytes.Buffer
		_, serr := pair.prog.Run(bctx, part, &buf, embedding.StreamOptions{Limits: lim})
		part.Close()
		if serr != nil {
			return nil, classifyStream(serr)
		}
		return &rawXML{body: buf.Bytes()}, nil
	}
}

// orWorse keeps cancellation, limit and injected-fault errors in their
// own classes when a mapping stage fails: only genuine input faults
// collapse to 400.
func (ae *apiError) orWorse(err error) error {
	var ce *guard.CancelError
	var le *guard.LimitError
	var fe *guard.FaultError
	if errors.As(err, &ce) || errors.As(err, &le) || errors.As(err, &fe) {
		return err
	}
	return ae
}
