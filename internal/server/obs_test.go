package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// getJSON fetches path from the server and decodes the response into
// out.
func getJSON(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: invalid JSON %q: %v", path, raw, err)
		}
	}
	return resp.StatusCode
}

// TestRequestIDRoundTrip pins the correlation contract: a caller's
// X-Request-Id comes back in the response header, appears in error
// bodies, and retrieves the request's wide event from /debug/events.
func TestRequestIDRoundTrip(t *testing.T) {
	s := testServer(t, Config{})

	const id = "test-round-trip-0001"
	data, _ := json.Marshal(EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60})
	req, _ := http.NewRequest("POST", "http://"+s.Addr()+"/v1/embed", bytes.NewReader(data))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/embed status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != id {
		t.Errorf("X-Request-Id echoed as %q, want %q", got, id)
	}

	// The wide event is retrievable by its correlation ID.
	var events []map[string]any
	if code := getJSON(t, s, "/debug/events?event=request&request_id="+id, &events); code != 200 {
		t.Fatalf("/debug/events status = %d", code)
	}
	if len(events) != 1 {
		t.Fatalf("events for %s = %d, want 1", id, len(events))
	}
	ev := events[0]
	if ev["route"] != "embed" || ev["outcome"] != "ok" {
		t.Errorf("wide event = %v", ev)
	}
	if _, ok := ev["latency_ms"].(float64); !ok {
		t.Errorf("wide event missing latency_ms: %v", ev)
	}
	if _, ok := ev["cache_hit"].(bool); !ok {
		t.Errorf("wide event missing handler annotation cache_hit: %v", ev)
	}

	// A server-minted ID (no header) is well-formed and unique.
	resp2, body := postJSON(t, s, "/v1/embed", EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 4, Restarts: 60})
	if minted := resp2.Header.Get("X-Request-Id"); len(minted) != 16 || minted == id {
		t.Errorf("minted X-Request-Id = %q", minted)
	}
	_ = body
}

// TestRequestIDInErrorBody checks the error envelope carries the
// request_id, and that a hostile header is replaced, not echoed.
func TestRequestIDInErrorBody(t *testing.T) {
	s := testServer(t, Config{})

	const id = "err-corr-42"
	req, _ := http.NewRequest("POST", "http://"+s.Addr()+"/v1/embed", strings.NewReader("{not json"))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	e, _ := body["error"].(map[string]any)
	if e["request_id"] != id {
		t.Errorf("error body request_id = %v, want %q", e["request_id"], id)
	}

	// Header injection: a request ID with log-breaking bytes is
	// discarded for a fresh one.
	req2, _ := http.NewRequest("POST", "http://"+s.Addr()+"/v1/embed", strings.NewReader("{}"))
	req2.Header.Set("X-Request-Id", "bad id\twith\tcontrol")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) != 16 || strings.ContainsAny(got, " \t") {
		t.Errorf("hostile header echoed back: %q", got)
	}
}

// TestReadyzBody pins the /readyz JSON shape: drain state and queue
// depth for load balancers and the smoke scripts.
func TestReadyzBody(t *testing.T) {
	s := testServer(t, Config{})
	var body map[string]any
	if code := getJSON(t, s, "/readyz", &body); code != 200 {
		t.Fatalf("/readyz status = %d", code)
	}
	if body["status"] != "ready" || body["draining"] != false {
		t.Errorf("/readyz body = %v", body)
	}
	for _, k := range []string{"queue_depth", "inflight"} {
		if _, ok := body[k].(float64); !ok {
			t.Errorf("/readyz missing %s: %v", k, body)
		}
	}
}

// TestWideEventJSONLog checks that with LogFormat set the server emits
// one JSON log line per request with the pinned field names.
func TestWideEventJSONLog(t *testing.T) {
	var logBuf syncBuffer
	s := testServer(t, Config{Log: &logBuf, LogFormat: "json"})

	const id = "log-line-check-7"
	data, _ := json.Marshal(EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 5, Restarts: 60})
	req, _ := http.NewRequest("POST", "http://"+s.Addr()+"/v1/embed", bytes.NewReader(data))
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var line map[string]any
	for _, l := range strings.Split(logBuf.String(), "\n") {
		if !strings.Contains(l, id) {
			continue
		}
		if err := json.Unmarshal([]byte(l), &line); err != nil {
			t.Fatalf("log line %q: %v", l, err)
		}
		break
	}
	if line == nil {
		t.Fatalf("no wide-event log line for %s in %q", id, logBuf.String())
	}
	for _, k := range []string{"route", "status", "outcome", "latency_ms", "queue_wait_ms"} {
		if _, ok := line[k]; !ok {
			t.Errorf("log line missing %s: %v", k, line)
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: the server writes log
// lines from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestConcurrentScrapes hammers /metrics and /debug/events while
// request traffic flows; under -race this pins that the observability
// surfaces are safe against the request path.
func TestConcurrentScrapes(t *testing.T) {
	s := testServer(t, Config{})

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				postJSON(t, s, "/v1/embed", EmbedRequest{
					schemaPair: classPair(), Att: "uniform",
					Seed: int64(100 + w*10 + i), Restarts: 20,
				})
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				for _, path := range []string{"/metrics", "/debug/events?event=request", "/readyz"} {
					resp, err := http.Get("http://" + s.Addr() + path)
					if err != nil {
						t.Errorf("GET %s: %v", path, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						t.Errorf("GET %s: status %d", path, resp.StatusCode)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestEmbedExplain checks /v1/embed's explain flag: the response gains
// the per-restart ledger and aggregate rejection counts, and explained
// and plain runs do not share cache entries.
func TestEmbedExplain(t *testing.T) {
	s := testServer(t, Config{})

	req := EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 9, Restarts: 60, Explain: true}
	resp, body := postJSON(t, s, "/v1/embed", req)
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/embed explain status = %d, body %v", resp.StatusCode, body)
	}
	ledger, ok := body["ledger"].([]any)
	if !ok || len(ledger) == 0 {
		t.Fatalf("explain response has no ledger: %v", body)
	}
	rec, _ := ledger[0].(map[string]any)
	for _, k := range []string{"restart", "heuristic", "seed", "outcome", "rejections"} {
		if _, present := rec[k]; !present {
			t.Errorf("ledger record missing %s: %v", rec, k)
		}
	}
	if _, ok := body["rejections"].(map[string]any); !ok {
		t.Errorf("explain response has no rejections aggregate: %v", body)
	}

	// The same request without explain must not serve the explained
	// artifact (and vice versa).
	req.Explain = false
	resp2, body2 := postJSON(t, s, "/v1/embed", req)
	if resp2.StatusCode != 200 {
		t.Fatalf("plain embed status = %d", resp2.StatusCode)
	}
	if _, present := body2["ledger"]; present {
		t.Errorf("plain response leaked ledger: %v", body2)
	}
	if cached, _ := body2["cached"].(bool); cached {
		t.Errorf("plain request hit the explained cache entry")
	}
}
