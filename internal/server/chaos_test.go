package server

// Chaos suite: drives the daemon through injected faults
// (internal/guard's counted fault plans) and asserts the containment
// behaviors exactly — retry budgets, shed statuses, drain outcomes.
// Everything here runs under -race in make check.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/guard"
	"repro/internal/workload"
)

// migrateReq is the canonical chaos request: a small migrate whose
// server.migrate stage is where most plans inject.
func migrateReq() MigrateRequest {
	return MigrateRequest{
		schemaPair: classPair(),
		Embedding:  workload.ClassEmbedding().Marshal(),
		Document:   classDocXML,
	}
}

func mustBody(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestChaosRetryBudget: a transient fault on the migrate stage is
// retried with backoff — exactly as many times as -retry allows, no
// more, no fewer.
func TestChaosRetryBudget(t *testing.T) {
	t.Run("recovers within budget", func(t *testing.T) {
		// First 2 hits fail; the server's 2 retries absorb them.
		plan := guard.NewFaultPlan(guard.FaultSpec{
			Stage: "server.migrate", Mode: guard.FaultModeError, Count: 2,
		})
		restore := guard.SetFaultPlan(plan)
		defer restore()
		s := testServer(t, Config{Retries: 2, RetryBase: time.Millisecond})

		retriesBefore := mRetries.Value()
		start := time.Now()
		resp, body := postJSON(t, s, "/v1/migrate", migrateReq())
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d, want 200 (retries should absorb 2 faults): %v", resp.StatusCode, body)
		}
		if attempts, _ := body["attempts"].(float64); attempts != 3 {
			t.Errorf("attempts = %v, want 3 (1 + 2 retries)", body["attempts"])
		}
		if hits := plan.Hits("server.migrate"); hits != 3 {
			t.Errorf("stage hit %d times, want 3", hits)
		}
		if got := mRetries.Value() - retriesBefore; got != 2 {
			t.Errorf("xse_server_retries_total delta = %d, want 2", got)
		}
		// Backoff slept between attempts: >= base/2 + base (two rounds
		// at 1ms base, minimum jitter half each round).
		if elapsed := time.Since(start); elapsed < time.Millisecond {
			t.Errorf("no backoff observed (elapsed %s)", elapsed)
		}
	})

	t.Run("exhausts budget", func(t *testing.T) {
		// Persistent fault: every hit fails, so 1 + 2 retries all fail
		// and the request surfaces a 500.
		plan := guard.NewFaultPlan(guard.FaultSpec{
			Stage: "server.migrate", Mode: guard.FaultModeError,
		})
		restore := guard.SetFaultPlan(plan)
		defer restore()
		s := testServer(t, Config{Retries: 2, RetryBase: time.Millisecond})

		retriesBefore := mRetries.Value()
		resp, body := postJSON(t, s, "/v1/migrate", migrateReq())
		if resp.StatusCode != 500 || errorCode(t, body) != "internal" {
			t.Fatalf("status = %d code = %q, want 500 internal", resp.StatusCode, errorCode(t, body))
		}
		if hits := plan.Hits("server.migrate"); hits != 3 {
			t.Errorf("stage hit %d times, want exactly 3 (retry budget bounds the damage)", hits)
		}
		if got := mRetries.Value() - retriesBefore; got != 2 {
			t.Errorf("xse_server_retries_total delta = %d, want 2", got)
		}
	})

	t.Run("retry disabled", func(t *testing.T) {
		plan := guard.NewFaultPlan(guard.FaultSpec{
			Stage: "server.migrate", Mode: guard.FaultModeError, Count: 1,
		})
		restore := guard.SetFaultPlan(plan)
		defer restore()
		s := testServer(t, Config{Retries: -1})

		resp, _ := postJSON(t, s, "/v1/migrate", migrateReq())
		if resp.StatusCode != 500 {
			t.Fatalf("status = %d, want 500 (no retries)", resp.StatusCode)
		}
		if hits := plan.Hits("server.migrate"); hits != 1 {
			t.Errorf("stage hit %d times, want 1", hits)
		}
	})
}

// TestChaosPanicRecovery: an injected panic is contained to its
// request — 500 + counter, and the daemon keeps serving.
func TestChaosPanicRecovery(t *testing.T) {
	plan := guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModePanic, Count: 1,
	})
	restore := guard.SetFaultPlan(plan)
	defer restore()
	s := testServer(t, Config{})

	panicsBefore := mPanics.Value()
	resp, body := postJSON(t, s, "/v1/migrate", migrateReq())
	if resp.StatusCode != 500 || errorCode(t, body) != "internal" {
		t.Fatalf("status = %d code = %q, want 500 internal", resp.StatusCode, errorCode(t, body))
	}
	if got := mPanics.Value() - panicsBefore; got != 1 {
		t.Errorf("xse_server_panics_total delta = %d, want 1", got)
	}

	// The process survived; the next request works.
	resp, body = postJSON(t, s, "/v1/migrate", migrateReq())
	if resp.StatusCode != 200 {
		t.Fatalf("post-panic status = %d, want 200: %v", resp.StatusCode, body)
	}
}

// TestChaosShed: overload is shed explicitly — 429 + Retry-After —
// rather than queued without bound.
func TestChaosShed(t *testing.T) {
	// One execution slot, one queue slot, slow requests.
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: 700 * time.Millisecond,
	}))
	defer restore()
	s := testServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 5 * time.Second, Retries: -1})

	shedBefore := mShed[shedQueueFull].Value()
	var wg sync.WaitGroup
	status := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json",
				strings.NewReader(mustBody(t, migrateReq())))
			if err == nil {
				status[i] = resp.StatusCode
				resp.Body.Close()
			}
		}(i)
		// Let request 0 occupy the slot and request 1 the queue.
		time.Sleep(150 * time.Millisecond)
	}

	// Slot and queue are both full: this one is shed immediately.
	resp, body := postJSON(t, s, "/v1/migrate", migrateReq())
	if resp.StatusCode != 429 || errorCode(t, body) != "shed" {
		t.Errorf("status = %d code = %q, want 429 shed", resp.StatusCode, errorCode(t, body))
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if got := mShed[shedQueueFull].Value() - shedBefore; got < 1 {
		t.Error("xse_server_shed_total{reason=queue_full} did not increase")
	}

	// The accepted requests still complete.
	wg.Wait()
	for i, st := range status {
		if st != 200 {
			t.Errorf("accepted request %d finished with status %d, want 200", i, st)
		}
	}
}

// TestChaosShedQueueTimeout: a queued request does not wait past
// QueueWait.
func TestChaosShedQueueTimeout(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: time.Second,
	}))
	defer restore()
	s := testServer(t, Config{MaxInFlight: 1, MaxQueue: 4, QueueWait: 100 * time.Millisecond, Retries: -1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json",
			strings.NewReader(mustBody(t, migrateReq())))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond) // slot occupied for ~1s now

	shedBefore := mShed[shedQueueTimeout].Value()
	start := time.Now()
	resp, body := postJSON(t, s, "/v1/migrate", migrateReq())
	if resp.StatusCode != 429 || errorCode(t, body) != "shed" {
		t.Errorf("status = %d code = %q, want 429 shed", resp.StatusCode, errorCode(t, body))
	}
	if elapsed := time.Since(start); elapsed > 700*time.Millisecond {
		t.Errorf("queued request waited %s, want ~QueueWait (100ms)", elapsed)
	}
	if got := mShed[shedQueueTimeout].Value() - shedBefore; got != 1 {
		t.Errorf("xse_server_shed_total{reason=queue_timeout} delta = %d, want 1", got)
	}
	wg.Wait()
}

// TestChaosDrainUnderLoad: SIGTERM-style drain with slow requests in
// flight — every accepted request completes with 200, none are
// dropped, and the daemon then refuses new connections.
func TestChaosDrainUnderLoad(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: 600 * time.Millisecond,
	}))
	defer restore()
	s := testServer(t, Config{MaxInFlight: 8, Retries: -1})
	const n = 8

	body := mustBody(t, migrateReq())
	var wg sync.WaitGroup
	results := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json", strings.NewReader(body))
			if err != nil {
				results[i] = "error: " + err.Error()
				return
			}
			defer resp.Body.Close()
			var out MigrateResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results[i] = fmt.Sprintf("status %d, bad body: %v", resp.StatusCode, err)
				return
			}
			if resp.StatusCode != 200 || out.Document == "" {
				results[i] = fmt.Sprintf("status %d, document %d bytes", resp.StatusCode, len(out.Document))
				return
			}
			results[i] = "ok"
		}(i)
	}

	// Give every request time to be admitted (the slot pool fits all 8),
	// then drain with a generous deadline.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (drain should finish in-flight work)", err)
	}
	wg.Wait()
	for i, r := range results {
		if r != "ok" {
			t.Errorf("accepted request %d lost during drain: %s", i, r)
		}
	}

	// Drained means gone: new connections are refused.
	if _, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json", strings.NewReader(body)); err == nil {
		t.Error("post-drain request succeeded, want connection error")
	}
}

// TestChaosDrainDeadline: when the drain deadline passes, in-flight
// work is force-canceled — the requests answer 504 (never a silent
// drop) and the cancellations are counted.
func TestChaosDrainDeadline(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: time.Minute,
	}))
	defer restore()
	s := testServer(t, Config{Retries: -1})

	droppedBefore := mDrainDropped.Value()
	var wg sync.WaitGroup
	wg.Add(1)
	var gotStatus int
	go func() {
		defer wg.Done()
		resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json",
			strings.NewReader(mustBody(t, migrateReq())))
		if err == nil {
			gotStatus = resp.StatusCode
			resp.Body.Close()
		}
	}()
	time.Sleep(150 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown returned nil, want deadline error (request needed a minute)")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("forced drain took %s, want prompt exit after the deadline", elapsed)
	}
	wg.Wait()
	if gotStatus != 504 {
		t.Errorf("force-canceled request answered %d, want 504", gotStatus)
	}
	if got := mDrainDropped.Value() - droppedBefore; got != 1 {
		t.Errorf("xse_server_drain_canceled_total delta = %d, want 1", got)
	}
}

// TestChaosDrainSheds: while draining, readiness reports 503 and new
// API requests are shed with 503 + Retry-After.
func TestChaosDrainSheds(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.migrate", Mode: guard.FaultModeLatency, Latency: 400 * time.Millisecond,
	}))
	defer restore()
	// DrainGrace keeps the listener up long enough to observe the
	// shedding window.
	s := testServer(t, Config{DrainGrace: 600 * time.Millisecond, Retries: -1})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post("http://"+s.Addr()+"/v1/migrate", "application/json",
			strings.NewReader(mustBody(t, migrateReq())))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond)

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Shutdown(ctx)
	}()
	time.Sleep(150 * time.Millisecond) // inside the DrainGrace window

	resp, err := http.Get("http://" + s.Addr() + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
	}

	shedBefore := mShed[shedDraining].Value()
	resp2, body := postJSON(t, s, "/v1/migrate", migrateReq())
	if resp2.StatusCode != 503 || errorCode(t, body) != "draining" {
		t.Errorf("status = %d code = %q, want 503 draining", resp2.StatusCode, errorCode(t, body))
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" {
		t.Error("draining shed without Retry-After header")
	}
	if got := mShed[shedDraining].Value() - shedBefore; got != 1 {
		t.Errorf("xse_server_shed_total{reason=draining} delta = %d, want 1", got)
	}

	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestChaosCacheColdWarmLatency: the acceptance check — a second
// identical /v1/embed is served from the artifact cache at >=10x lower
// latency than the cold request. Injected latency on the search stage
// makes the contrast deterministic.
func TestChaosCacheColdWarmLatency(t *testing.T) {
	restore := guard.SetFaultPlan(guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.embed.search", Mode: guard.FaultModeLatency, Latency: 300 * time.Millisecond,
	}))
	defer restore()
	s := testServer(t, Config{})
	req := EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60}

	hitsBefore := mCacheHits.Value()
	coldStart := time.Now()
	resp, body := postJSON(t, s, "/v1/embed", req)
	cold := time.Since(coldStart)
	if resp.StatusCode != 200 {
		t.Fatalf("cold embed status = %d: %v", resp.StatusCode, body)
	}
	if cached, _ := body["cached"].(bool); cached {
		t.Fatal("cold embed reported cached=true")
	}

	warmStart := time.Now()
	resp, body = postJSON(t, s, "/v1/embed", req)
	warm := time.Since(warmStart)
	if resp.StatusCode != 200 {
		t.Fatalf("warm embed status = %d", resp.StatusCode)
	}
	if cached, _ := body["cached"].(bool); !cached {
		t.Fatal("warm embed not served from cache")
	}
	if got := mCacheHits.Value() - hitsBefore; got < 1 {
		t.Error("xse_server_cache_hits_total did not increase")
	}
	if warm*10 > cold {
		t.Errorf("warm/cold latency = %s/%s, want >=10x speedup", warm, cold)
	}
}

// TestChaosConcurrentIdenticalEmbeds: concurrent identical requests
// single-flight the expensive build — the search runs once, everyone
// gets the artifact.
func TestChaosConcurrentIdenticalEmbeds(t *testing.T) {
	plan := guard.NewFaultPlan(guard.FaultSpec{
		Stage: "server.embed.search", Mode: guard.FaultModeLatency, Latency: 200 * time.Millisecond,
	})
	restore := guard.SetFaultPlan(plan)
	defer restore()
	// The pool must fit every request: joiners hold their admission
	// slot while they wait on the leader's build.
	s := testServer(t, Config{MaxInFlight: 16, QueueWait: 10 * time.Second})
	body := mustBody(t, EmbedRequest{schemaPair: classPair(), Att: "uniform", Seed: 3, Restarts: 60})

	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post("http://"+s.Addr()+"/v1/embed", "application/json", strings.NewReader(body))
			if err == nil {
				codes[i] = resp.StatusCode
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != 200 {
			t.Errorf("request %d: status %d, want 200", i, c)
		}
	}
	if hits := plan.Hits("server.embed.search"); hits != 1 {
		t.Errorf("search stage ran %d times for %d identical requests, want 1 (single-flight)", hits, n)
	}
}
