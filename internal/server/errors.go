package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/guard"
	"repro/internal/search"
)

// apiError is a request failure with its HTTP rendering. The code
// strings mirror the CLI exit-code vocabulary (see the error→status
// table in DESIGN.md "Service layer"): what a one-shot command reports
// as an exit code, the daemon reports as a status, so operators debug
// one classification, not two.
type apiError struct {
	status     int
	code       string // invalid | limit | timeout | not_found | shed | draining | internal
	msg        string
	retryAfter time.Duration // > 0 renders a Retry-After header
}

func (e *apiError) Error() string { return e.msg }

// badRequest builds the 400 invalid-input error (CLI exit 3).
func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: "invalid", msg: fmt.Sprintf(format, args...)}
}

// notFound builds the 422 no-embedding-found error (CLI exit 5): the
// request was well-formed, but no embedding exists (or none was found
// within the search budget).
func notFound(format string, args ...any) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, code: "not_found", msg: fmt.Sprintf(format, args...)}
}

// toAPIError classifies err into its HTTP rendering, mirroring the CLI
// conventions: limits → 413, deadline/cancellation → 504 (exit 4),
// shed → 429/503 with Retry-After, anything unclassified → 500
// (exit 1).
func toAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var se *shedError
	if errors.As(err, &se) {
		status, code := http.StatusTooManyRequests, "shed"
		if se.reason == shedDraining {
			status, code = http.StatusServiceUnavailable, "draining"
		}
		return &apiError{status: status, code: code, msg: se.Error(), retryAfter: se.retryAfter}
	}
	var le *guard.LimitError
	if errors.As(err, &le) {
		return &apiError{status: http.StatusRequestEntityTooLarge, code: "limit", msg: le.Error()}
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return &apiError{status: http.StatusRequestEntityTooLarge, code: "limit",
			msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
	}
	var ce *guard.CancelError
	if errors.As(err, &ce) ||
		errors.Is(err, search.ErrDeadline) || errors.Is(err, search.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return &apiError{status: http.StatusGatewayTimeout, code: "timeout", msg: err.Error()}
	}
	var fe *guard.FaultError
	if errors.As(err, &fe) {
		return &apiError{status: http.StatusInternalServerError, code: "internal",
			msg: fmt.Sprintf("transient failure persisted across retries: %v", err)}
	}
	return &apiError{status: http.StatusInternalServerError, code: "internal", msg: err.Error()}
}
