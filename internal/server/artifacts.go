package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"

	"repro/internal/guard"
)

// artifactKey hashes length-framed parts into a content key, so two
// requests naming the same schemas, embedding and options share one
// artifact entry regardless of which connection they arrived on.
func artifactKey(parts ...string) string {
	h := sha256.New()
	for _, part := range parts {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// artifactEntry is a single-flight slot: the leader that inserted it
// closes ready after publishing val/err; joiners block on ready or
// their own context. Failed builds are withdrawn before ready closes,
// so a linked entry always carries a usable artifact.
type artifactEntry struct {
	key   string
	ready chan struct{}
	val   any
	err   error
}

// artifactCache is the daemon's shared, bounded, content-addressed
// artifact home: compiled per-schema-pair state (validated embeddings,
// translation caches, search results) keyed by content hash, with LRU
// eviction and per-key single-flight. Keying by content rather than by
// pointer identity is what lets a long-lived process evict: nothing
// outside the cache pins an entry alive.
type artifactCache struct {
	capacity int

	mu  sync.Mutex
	lru *list.List // front = most recently used; values are *artifactEntry
	idx map[string]*list.Element
}

func newArtifactCache(capacity int) *artifactCache {
	return &artifactCache{
		capacity: capacity,
		lru:      list.New(),
		idx:      make(map[string]*list.Element, capacity),
	}
}

// get returns the artifact under key, building it on a miss. hit
// reports whether the value came from a completed or in-flight entry
// (single-flight joins count as hits: the work was shared). Build
// failures are never cached; a joiner observing a failed leader
// retries, becoming the new leader or finding a later success.
func (c *artifactCache) get(ctx context.Context, key string, build func() (any, error)) (val any, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.idx[key]; ok {
			c.lru.MoveToFront(el)
			ent := el.Value.(*artifactEntry)
			c.mu.Unlock()
			select {
			case <-ent.ready:
			case <-ctx.Done():
				return nil, false, guard.CheckCtx(ctx, "server: artifact cache")
			}
			if ent.err != nil {
				continue
			}
			return ent.val, true, nil
		}
		ent := &artifactEntry{key: key, ready: make(chan struct{})}
		el := c.lru.PushFront(ent)
		c.idx[key] = el
		if c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.idx, oldest.Value.(*artifactEntry).key)
		}
		c.mu.Unlock()

		ent.val, ent.err = build()
		if ent.err != nil {
			c.mu.Lock()
			if cur, ok := c.idx[key]; ok && cur == el {
				c.lru.Remove(el)
				delete(c.idx, key)
			}
			c.mu.Unlock()
		}
		close(ent.ready)
		return ent.val, false, ent.err
	}
}

// len reports resident entries (completed or in flight).
func (c *artifactCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
