package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/guard"
)

// Shed reasons (the label values of xse_server_shed_total).
const (
	shedQueueFull    = "queue_full"
	shedQueueTimeout = "queue_timeout"
	shedDraining     = "draining"
)

// shedError reports a request rejected by admission control. It maps
// to 429 (overload) or 503 (draining) with a Retry-After hint — the
// explicit alternative to letting an unbounded queue collapse the
// process.
type shedError struct {
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string {
	return fmt.Sprintf("request shed: %s (retry after %s)", e.reason, e.retryAfter)
}

// admission bounds concurrent request execution: MaxInFlight requests
// run, up to MaxQueue more wait (each at most QueueWait and never past
// its own context deadline), and everything beyond that is shed
// immediately. The queue is a counted semaphore wait, not a list —
// FIFO fairness is delegated to the runtime's channel queueing.
type admission struct {
	sem    chan struct{}
	queued atomic.Int64
	max    int64
	wait   time.Duration
}

func newAdmission(maxInFlight, maxQueue int, wait time.Duration) *admission {
	return &admission{
		sem:  make(chan struct{}, maxInFlight),
		max:  int64(maxQueue),
		wait: wait,
	}
}

// acquire blocks until the request may execute, returning the release
// to defer. It sheds with a *shedError when the wait queue is full or
// the queue wait times out, and with a *guard.CancelError when the
// request's own context ends first.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.sem <- struct{}{}:
		mInflight.Add(1)
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.max {
		a.queued.Add(-1)
		mShed[shedQueueFull].Inc()
		return nil, &shedError{reason: shedQueueFull, retryAfter: a.wait}
	}
	mQueueDepth.Add(1)
	defer func() {
		a.queued.Add(-1)
		mQueueDepth.Add(-1)
	}()

	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.sem <- struct{}{}:
		mInflight.Add(1)
		return a.release, nil
	case <-timer.C:
		mShed[shedQueueTimeout].Inc()
		return nil, &shedError{reason: shedQueueTimeout, retryAfter: a.wait}
	case <-ctx.Done():
		return nil, guard.CheckCtx(ctx, "server: admission queue")
	}
}

func (a *admission) release() {
	<-a.sem
	mInflight.Add(-1)
}
