package server

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"repro/internal/guard"
)

// isTransient reports whether err is worth retrying: today that is the
// injected *guard.FaultError (the stand-in for transient infrastructure
// failure — a flaky volume, a blipped dependency). Input faults,
// limits and deadlines are deterministic and are never retried.
func isTransient(err error) bool {
	var fe *guard.FaultError
	return errors.As(err, &fe)
}

// withRetry runs op up to cfg.Retries+1 times, retrying only transient
// failures with exponential backoff plus full jitter (sleeping in
// [base/2, base), doubling each round) so synchronized clients do not
// re-converge on the same instant. The request context bounds the
// whole loop: a deadline during backoff surfaces as a *CancelError.
// attempts reports how many times op ran.
func (s *Server) withRetry(ctx context.Context, op func(context.Context) error) (attempts int, err error) {
	backoff := s.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		err = op(ctx)
		attempts = attempt + 1
		if err == nil || !isTransient(err) || attempt >= s.cfg.Retries {
			return attempts, err
		}
		mRetries.Inc()
		half := backoff / 2
		if half <= 0 {
			half = 1
		}
		d := half + time.Duration(rand.Int63n(int64(half)))
		timer := time.NewTimer(d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return attempts, guard.CheckCtx(ctx, "server: retry backoff")
		}
		timer.Stop()
		backoff *= 2
	}
}
