package oracle

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegressionReproducers replays every checked-in counterexample
// under testdata/regress. Each file records a scenario that once
// witnessed a defect (or a canary-planted one); the library must keep
// all of them passing. New oracle findings are added here by copying
// the shrunk reproducer file the CLI writes with -repro-dir.
func TestRegressionReproducers(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regress", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression reproducers found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			r, err := ParseRepro(string(data))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if v := r.Check(); v != nil {
				t.Errorf("defect reproduces again: %s", v.Detail)
			}
		})
	}
}
