// Package oracle is a randomized end-to-end conformance harness for
// the information-preservation guarantees of schema embeddings. From a
// deterministic seed it generates (source DTD, embedding, instance,
// X_R query) quadruples — synthetic schemas perturbed into embedding
// targets with a known ground-truth mapping — and checks the paper's
// theorems as executable properties:
//
//   - type safety (Theorem 4.1): σd(T) conforms to the target DTD;
//   - invertibility (Theorem 4.1): σd⁻¹(σd(T)) is value-isomorphic to T;
//   - query preservation (Theorem 4.2): Q(T) = idM(Tr(Q)(σd(T))) for
//     X_R queries Q and the schema-directed translation Tr;
//   - ANFA differential: evaluating the automaton M_Q built directly
//     from Q agrees with the reference X_R evaluator on the source;
//   - compiled differential: the compiled evaluation plan
//     (xpath.Compile(Q).Run) returns exactly the reference
//     interpreter's answer, in the same first-reached order;
//   - XSLT differential: the generated forward stylesheet computes
//     exactly σd, and the generated inverse stylesheet recovers T;
//   - stream differential: the streaming engine's output for σd is
//     byte-identical to the tree path's serialization.
//
// Failing inputs are shrunk to minimal counterexamples (dropping star
// children, canonicalizing text, simplifying queries) and serialized to
// reproducer files that capture the schemas, mapping, document and
// query needed to replay the failure.
package oracle

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Property names one checked guarantee.
type Property string

// The checked properties.
const (
	PropGeneration   Property = "generation"
	PropTypeSafety   Property = "type-safety"
	PropInvert       Property = "invertibility"
	PropQueryPreserv Property = "query-preservation"
	PropANFADiff     Property = "anfa-differential"
	PropCompiledDiff Property = "compiled-differential"
	PropXSLTForward  Property = "xslt-forward"
	PropXSLTInverse  Property = "xslt-inverse"
	PropStreamDiff   Property = "stream-differential"
	PropAnfaOpt      Property = "anfa-opt-differential"
)

// Properties lists every property in reporting order.
func Properties() []Property {
	return []Property{
		PropGeneration, PropTypeSafety, PropInvert,
		PropQueryPreserv, PropANFADiff, PropCompiledDiff,
		PropXSLTForward, PropXSLTInverse, PropStreamDiff,
		PropAnfaOpt,
	}
}

// Config steers a run. The zero value selects usable defaults; Seed 0
// is a valid (and the default) seed.
type Config struct {
	// Trials is the number of generated scenarios. Default 100.
	Trials int
	// Seed derives every trial deterministically: trial i uses seed
	// Seed + i, so any failure replays in isolation.
	Seed int64
	// QueriesPerTrial is the number of random X_R queries checked per
	// scenario. Default 3.
	QueriesPerTrial int
	// MinTypes and MaxTypes bound the synthetic source schema size.
	// Defaults 4 and 12.
	MinTypes, MaxTypes int
	// MaxNoise bounds the perturbation level (uniform in [0, MaxNoise])
	// applied to derive the target schema. Default 0.8.
	MaxNoise float64
	// StarMax bounds children generated under Kleene stars. Default 3.
	StarMax int
	// DepthBudget bounds instance generation recursion. Default 12.
	DepthBudget int
	// NoShrink disables counterexample minimization.
	NoShrink bool
	// ReproDir, when non-empty, receives one reproducer file per
	// violation.
	ReproDir string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 100
	}
	if c.QueriesPerTrial == 0 {
		c.QueriesPerTrial = 3
	}
	if c.MinTypes == 0 {
		c.MinTypes = 4
	}
	if c.MaxTypes == 0 {
		c.MaxTypes = 12
	}
	if c.MaxTypes < c.MinTypes {
		c.MaxTypes = c.MinTypes
	}
	if c.MaxNoise == 0 {
		c.MaxNoise = 0.8
	}
	if c.StarMax == 0 {
		c.StarMax = 3
	}
	if c.DepthBudget == 0 {
		c.DepthBudget = 12
	}
	return c
}

// Violation is one property failure, shrunk when shrinking is enabled.
type Violation struct {
	Trial    int
	Seed     int64
	Property Property
	Detail   string
	Source   *dtd.DTD
	Target   *dtd.DTD
	Emb      *embedding.Embedding
	Doc      *xmltree.Tree
	// Query is the offending query for query-driven properties; nil
	// otherwise.
	Query xpath.Expr
	// ReproFile is the path of the serialized counterexample, when
	// Config.ReproDir was set.
	ReproFile string
}

func (v *Violation) String() string {
	q := ""
	if v.Query != nil {
		q = fmt.Sprintf(" query=%q", xpath.String(v.Query))
	}
	return fmt.Sprintf("trial %d (seed %d) %s:%s %s", v.Trial, v.Seed, v.Property, q, v.Detail)
}

// Report aggregates a run.
type Report struct {
	Trials int
	// Checks counts executed checks per property (generation counts
	// scenarios built).
	Checks map[Property]int
	// NonTrivial counts, per query-driven property, the checks whose
	// reference answer set was non-empty — the checks with real
	// discriminating power. A run whose NonTrivial counts are near zero
	// is vacuous regardless of how many checks passed.
	NonTrivial map[Property]int
	// Violations holds every property failure, in trial order.
	Violations []Violation
}

// Failed reports whether any property was violated.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders per-property counts on one line each.
func (r *Report) Summary() string {
	byProp := map[Property]int{}
	for _, v := range r.Violations {
		byProp[v.Property]++
	}
	out := fmt.Sprintf("%d trials\n", r.Trials)
	for _, p := range Properties() {
		if r.Checks[p] == 0 && byProp[p] == 0 {
			continue
		}
		extra := ""
		if n, ok := r.NonTrivial[p]; ok {
			extra = fmt.Sprintf("  (%d non-empty answers)", n)
		}
		out += fmt.Sprintf("  %-20s %6d checks  %d violations%s\n", p, r.Checks[p], byProp[p], extra)
	}
	return out
}

// Run executes the configured number of trials, honoring ctx between
// trials (a canceled context stops the run and returns the report so
// far together with ctx's error).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Checks: map[Property]int{}, NonTrivial: map[Property]int{}}
	for i := 0; i < cfg.Trials; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		seed := cfg.Seed + int64(i)
		vs := runTrial(i, seed, cfg, rep)
		for _, v := range vs {
			v.Trial, v.Seed = i, seed
			if !cfg.NoShrink {
				shrink(&v)
			}
			if cfg.ReproDir != "" {
				path, err := writeRepro(cfg.ReproDir, &v)
				if err != nil {
					return rep, fmt.Errorf("oracle: writing reproducer: %w", err)
				}
				v.ReproFile = path
			}
			if cfg.Logf != nil {
				cfg.Logf("VIOLATION %s", v.String())
			}
			rep.Violations = append(rep.Violations, v)
		}
		rep.Trials++
		if cfg.Logf != nil && (i+1)%100 == 0 {
			cfg.Logf("%d/%d trials, %d violations", i+1, cfg.Trials, len(rep.Violations))
		}
	}
	return rep, nil
}

// runTrial generates one scenario and checks every property,
// converting panics escaping library code into violations of the
// property being checked.
func runTrial(i int, seed int64, cfg Config, rep *Report) []Violation {
	r := rand.New(rand.NewSource(seed))
	tr, err := genTrial(r, cfg)
	rep.Checks[PropGeneration]++
	if err != nil {
		return []Violation{{Property: PropGeneration, Detail: err.Error()}}
	}
	return checkTrial(tr, rep)
}

// guardPanic runs f, converting a panic into a violation detail.
func guardPanic(f func() *Violation) (v *Violation) {
	defer func() {
		if p := recover(); p != nil {
			buf := make([]byte, 4096)
			n := runtime.Stack(buf, false)
			v = &Violation{Detail: fmt.Sprintf("panic: %v\n%s", p, buf[:n])}
		}
	}()
	return f()
}

// idSet renders a sorted, deduplicated list of node ids for
// set-semantics comparison of query results.
func idSet(ids []xmltree.NodeID) []xmltree.NodeID {
	out := append([]xmltree.NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, id := range out {
		if i == 0 || id != dedup[len(dedup)-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup
}

func idSetsEqual(a, b []xmltree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
