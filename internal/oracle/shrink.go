package oracle

import (
	"repro/internal/dtd"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// shrinkBudget bounds the number of candidate re-checks per violation;
// each re-check replays the full property pipeline on a candidate
// input, so the budget caps shrinking cost on large counterexamples.
const shrinkBudget = 500

// canonicalText is the value text nodes are canonicalized to while
// shrinking (one of the generator's default vocabulary values, so
// shrunk documents stay within the generated value domain).
const canonicalText = "v0"

// shrink minimizes the violation's document and query while the
// property still fails: star children are dropped one subtree at a
// time (the only structural edit guaranteed to preserve source
// conformance), text values are canonicalized, and the query is
// replaced by any strictly smaller variant that still witnesses the
// failure. Greedy passes repeat to a fixpoint or until the re-check
// budget is exhausted.
func shrink(v *Violation) {
	budget := shrinkBudget
	fails := func(doc *xmltree.Tree, q xpath.Expr) bool {
		if budget <= 0 {
			return false
		}
		budget--
		tr := &Trial{Source: v.Source, Target: v.Target, Emb: v.Emb, Doc: doc}
		return guardPanic(func() *Violation {
			return checkProperty(v.Property, tr, doc, q)
		}) != nil
	}
	for improved := true; improved && budget > 0; {
		improved = false
		if doc, ok := shrinkDocOnce(v, fails); ok {
			v.Doc = doc
			improved = true
			continue
		}
		if v.Query != nil {
			if q, ok := shrinkQueryOnce(v, fails); ok {
				v.Query = q
				improved = true
			}
		}
	}
}

// shrinkDocOnce tries one accepted document edit: dropping a star
// child, then canonicalizing one text value.
func shrinkDocOnce(v *Violation, fails func(*xmltree.Tree, xpath.Expr) bool) (*xmltree.Tree, bool) {
	var found *xmltree.Tree
	v.Doc.Walk(func(n *xmltree.Node) {
		if found != nil || n.IsText() {
			return
		}
		if p, ok := v.Source.Prods[n.Label]; !ok || p.Kind != dtd.KindStar {
			return
		}
		for _, c := range n.Children {
			cand := cloneEditing(v.Doc, c, nil, "")
			if fails(cand, v.Query) {
				found = cand
				return
			}
		}
	})
	if found != nil {
		return found, true
	}
	v.Doc.Walk(func(n *xmltree.Node) {
		if found != nil || !n.IsText() || n.Text == canonicalText {
			return
		}
		cand := cloneEditing(v.Doc, nil, n, canonicalText)
		if fails(cand, v.Query) {
			found = cand
		}
	})
	return found, found != nil
}

// shrinkQueryOnce tries the strictly smaller query variants and accepts
// the first one that still fails.
func shrinkQueryOnce(v *Violation, fails func(*xmltree.Tree, xpath.Expr) bool) (xpath.Expr, bool) {
	for _, cand := range queryCandidates(v.Query) {
		if exprSize(cand) >= exprSize(v.Query) {
			continue
		}
		if fails(v.Doc, cand) {
			return cand, true
		}
	}
	return nil, false
}

// cloneEditing deep-copies the document with fresh node ids, skipping
// the drop subtree (when non-nil) and replacing retext's value (when
// non-nil) with val.
func cloneEditing(doc *xmltree.Tree, drop, retext *xmltree.Node, val string) *xmltree.Tree {
	out := &xmltree.Tree{}
	var cp func(n *xmltree.Node) *xmltree.Node
	cp = func(n *xmltree.Node) *xmltree.Node {
		if n == drop {
			return nil
		}
		var m *xmltree.Node
		if n.IsText() {
			text := n.Text
			if n == retext {
				text = val
			}
			m = out.NewText(text)
		} else {
			m = out.NewElement(n.Label)
		}
		for _, c := range n.Children {
			if cc := cp(c); cc != nil {
				xmltree.Append(m, cc)
			}
		}
		return m
	}
	out.Root = cp(doc.Root)
	return out
}

// queryCandidates enumerates one-step reductions of an expression:
// replacing it with a direct subexpression, dropping a filter, and the
// same reductions applied to any subexpression in place.
func queryCandidates(e xpath.Expr) []xpath.Expr {
	var out []xpath.Expr
	switch e := e.(type) {
	case xpath.Seq:
		out = append(out, e.L, e.R)
		for _, l := range queryCandidates(e.L) {
			out = append(out, xpath.Seq{L: l, R: e.R})
		}
		for _, r := range queryCandidates(e.R) {
			out = append(out, xpath.Seq{L: e.L, R: r})
		}
	case xpath.Union:
		out = append(out, e.L, e.R)
		for _, l := range queryCandidates(e.L) {
			out = append(out, xpath.Union{L: l, R: e.R})
		}
		for _, r := range queryCandidates(e.R) {
			out = append(out, xpath.Union{L: e.L, R: r})
		}
	case xpath.Desc:
		out = append(out, e.L, e.R)
		for _, l := range queryCandidates(e.L) {
			out = append(out, xpath.Desc{L: l, R: e.R})
		}
		for _, r := range queryCandidates(e.R) {
			out = append(out, xpath.Desc{L: e.L, R: r})
		}
	case xpath.Star:
		out = append(out, e.P)
		for _, p := range queryCandidates(e.P) {
			out = append(out, xpath.Star{P: p})
		}
	case xpath.Filter:
		out = append(out, e.P)
		for _, q := range qualCandidates(e.Q) {
			out = append(out, xpath.Filter{P: e.P, Q: q})
		}
		for _, p := range queryCandidates(e.P) {
			out = append(out, xpath.Filter{P: p, Q: e.Q})
		}
	}
	return out
}

// qualCandidates enumerates one-step reductions of a qualifier.
func qualCandidates(q xpath.Qual) []xpath.Qual {
	var out []xpath.Qual
	switch q := q.(type) {
	case xpath.QNot:
		out = append(out, q.Q)
		for _, inner := range qualCandidates(q.Q) {
			out = append(out, xpath.QNot{Q: inner})
		}
	case xpath.QAnd:
		out = append(out, q.L, q.R)
	case xpath.QOr:
		out = append(out, q.L, q.R)
	case xpath.QPath:
		for _, p := range queryCandidates(q.P) {
			out = append(out, xpath.QPath{P: p})
		}
	case xpath.QTextEq:
		for _, p := range queryCandidates(q.P) {
			out = append(out, xpath.QTextEq{P: p, Val: q.Val})
		}
	}
	return out
}

// exprSize counts AST nodes of an expression (qualifiers included).
func exprSize(e xpath.Expr) int {
	switch e := e.(type) {
	case xpath.Seq:
		return 1 + exprSize(e.L) + exprSize(e.R)
	case xpath.Union:
		return 1 + exprSize(e.L) + exprSize(e.R)
	case xpath.Desc:
		return 1 + exprSize(e.L) + exprSize(e.R)
	case xpath.Star:
		return 1 + exprSize(e.P)
	case xpath.Filter:
		return 1 + exprSize(e.P) + qualSize(e.Q)
	default:
		return 1
	}
}

func qualSize(q xpath.Qual) int {
	switch q := q.(type) {
	case xpath.QNot:
		return 1 + qualSize(q.Q)
	case xpath.QAnd:
		return 1 + qualSize(q.L) + qualSize(q.R)
	case xpath.QOr:
		return 1 + qualSize(q.L) + qualSize(q.R)
	case xpath.QPath:
		return 1 + exprSize(q.P)
	case xpath.QTextEq:
		return 1 + exprSize(q.P)
	default:
		return 1
	}
}
