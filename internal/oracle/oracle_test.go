package oracle

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/fuzzseed"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestRunShortDeterministic is the checked-in oracle mode: a fixed-seed
// run that must stay green and non-vacuous, and must produce the exact
// same report when repeated.
func TestRunShortDeterministic(t *testing.T) {
	cfg := Config{Trials: 120, Seed: 1}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v.String())
	}
	if rep.Trials != cfg.Trials {
		t.Fatalf("ran %d trials, want %d", rep.Trials, cfg.Trials)
	}
	for _, p := range Properties() {
		if rep.Checks[p] == 0 {
			t.Errorf("property %s was never checked", p)
		}
	}
	// Vacuity guard: a healthy run must evaluate plenty of queries with
	// non-empty reference answers, or the query properties test nothing.
	for _, p := range []Property{PropQueryPreserv, PropANFADiff, PropCompiledDiff} {
		if min := rep.Checks[p] / 4; rep.NonTrivial[p] < min {
			t.Errorf("property %s: only %d/%d checks had non-empty answers (want >= %d)",
				p, rep.NonTrivial[p], rep.Checks[p], min)
		}
	}
	again, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if rep.Summary() != again.Summary() {
		t.Errorf("same seed produced different reports:\n%s\nvs\n%s", rep.Summary(), again.Summary())
	}
}

// TestRunLong is the opt-in deep mode: XSE_ORACLE_TRIALS=5000 go test
// ./internal/oracle -run TestRunLong.
func TestRunLong(t *testing.T) {
	env := os.Getenv("XSE_ORACLE_TRIALS")
	if env == "" {
		t.Skip("set XSE_ORACLE_TRIALS to run the long oracle mode")
	}
	trials, err := strconv.Atoi(env)
	if err != nil || trials <= 0 {
		t.Fatalf("invalid XSE_ORACLE_TRIALS=%q", env)
	}
	rep, err := Run(context.Background(), Config{Trials: trials, Seed: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v.String())
	}
	t.Log(rep.Summary())
}

func TestRunHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{Trials: 50, Seed: 1})
	if err == nil {
		t.Fatal("Run with canceled context returned nil error")
	}
	if rep == nil || rep.Trials != 0 {
		t.Fatalf("canceled run should report zero completed trials, got %+v", rep)
	}
}

// TestReproRoundTrip checks that a serialized counterexample parses
// back into the identical scenario and that replaying a healthy
// scenario reports no violation.
func TestReproRoundTrip(t *testing.T) {
	cfg := Config{}.withDefaults()
	tr, err := genTrial(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatalf("genTrial: %v", err)
	}
	v := &Violation{
		Trial:    3,
		Seed:     10,
		Property: PropQueryPreserv,
		Detail:   "first line\nsecond line",
		Source:   tr.Source,
		Target:   tr.Target,
		Emb:      tr.Emb,
		Doc:      tr.Doc,
		Query:    tr.Queries[0],
	}
	text := FormatRepro(v)
	r, err := ParseRepro(text)
	if err != nil {
		t.Fatalf("ParseRepro: %v\nreproducer was:\n%s", err, text)
	}
	if r.Property != PropQueryPreserv {
		t.Errorf("property %q, want %q", r.Property, PropQueryPreserv)
	}
	if got, want := r.Trial.Source.String(), tr.Source.String(); got != want {
		t.Errorf("source schema round-trip:\n%s\nwant:\n%s", got, want)
	}
	if got, want := r.Trial.Target.String(), tr.Target.String(); got != want {
		t.Errorf("target schema round-trip:\n%s\nwant:\n%s", got, want)
	}
	if got, want := r.Trial.Emb.Marshal(), tr.Emb.Marshal(); got != want {
		t.Errorf("mapping round-trip:\n%s\nwant:\n%s", got, want)
	}
	if got, want := r.Trial.Doc.String(), tr.Doc.String(); got != want {
		t.Errorf("document round-trip:\n%s\nwant:\n%s", got, want)
	}
	if got, want := xpath.String(r.Query), xpath.String(tr.Queries[0]); got != want {
		t.Errorf("query round-trip: %q, want %q", got, want)
	}
	if viol := r.Check(); viol != nil {
		t.Errorf("replaying a healthy scenario reported a violation: %s", viol.Detail)
	}
}

func TestParseReproMissingSection(t *testing.T) {
	if _, err := ParseRepro("== property type-safety\n"); err == nil {
		t.Fatal("ParseRepro accepted a reproducer with no schemas")
	}
}

// TestDetectionAndShrink plants a defect — the target production for
// one mapped str type is emptied, so σd's image can no longer conform —
// and checks that the oracle detects it and that shrinking produces a
// smaller document that still witnesses the failure with canonical
// text.
func TestDetectionAndShrink(t *testing.T) {
	cfg := Config{}.withDefaults()
	for seed := int64(1); seed < 50; seed++ {
		tr, err := genTrial(rand.New(rand.NewSource(seed)), cfg)
		if err != nil {
			t.Fatalf("genTrial(seed %d): %v", seed, err)
		}
		broken, docHasType := "", false
		for a, p := range tr.Source.Prods {
			if p.Kind != dtd.KindStr {
				continue
			}
			tr.Doc.Walk(func(n *xmltree.Node) {
				if n.Label == a {
					docHasType = true
				}
			})
			if docHasType {
				broken = a
				break
			}
		}
		if broken == "" {
			continue
		}
		tr.Target.Prods[tr.Emb.Lambda[broken]] = dtd.Empty()

		v := guardPanic(func() *Violation {
			return checkProperty(PropTypeSafety, tr, tr.Doc, nil)
		})
		if v == nil {
			t.Fatalf("seed %d: planted type-safety defect in %q was not detected", seed, broken)
		}
		v.Property = PropTypeSafety
		v.Source, v.Target, v.Emb, v.Doc = tr.Source, tr.Target, tr.Emb, tr.Doc

		before := countNodes(v.Doc)
		shrink(v)
		after := countNodes(v.Doc)
		if after > before {
			t.Errorf("seed %d: shrinking grew the document: %d -> %d nodes", seed, before, after)
		}
		if still := guardPanic(func() *Violation {
			return checkProperty(PropTypeSafety, &Trial{Source: v.Source, Target: v.Target, Emb: v.Emb, Doc: v.Doc}, v.Doc, nil)
		}); still == nil {
			t.Errorf("seed %d: shrunk document no longer witnesses the failure", seed)
		}
		// The defect is text-independent, so every surviving text value
		// must have been canonicalized.
		v.Doc.Walk(func(n *xmltree.Node) {
			if n.IsText() && n.Text != canonicalText {
				t.Errorf("seed %d: text %q survived canonicalization", seed, n.Text)
			}
		})
		return
	}
	t.Fatal("no trial contained a mapped str type present in its document")
}

// TestQueryShrinkConverges drives the query shrinker with a synthetic
// failure predicate and checks it reaches the minimal witness.
func TestQueryShrinkConverges(t *testing.T) {
	q, err := xpath.Parse("a/(b | c)[text() = \"x\"]/d")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v := &Violation{Query: q}
	// The "defect" needs only label b somewhere in the query.
	fails := func(_ *xmltree.Tree, cand xpath.Expr) bool {
		return strings.Contains(xpath.String(cand), "b")
	}
	for {
		next, ok := shrinkQueryOnce(v, fails)
		if !ok {
			break
		}
		v.Query = next
	}
	if got := xpath.String(v.Query); got != "b" {
		t.Errorf("query shrinking stopped at %q, want \"b\"", got)
	}
}

func TestEmitCorpus(t *testing.T) {
	root := t.TempDir()
	n, err := EmitCorpus(root, Config{Trials: 10, Seed: 1}, 5)
	if err != nil {
		t.Fatalf("EmitCorpus: %v", err)
	}
	if n == 0 {
		t.Fatal("EmitCorpus wrote no files")
	}
	total := 0
	for _, dir := range fuzzseed.Dirs {
		files, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("corpus dir %s: %v", dir, err)
		}
		if len(files) == 0 || len(files) > 5 {
			t.Errorf("corpus dir %s has %d files, want 1..5", dir, len(files))
		}
		for _, f := range files {
			body, err := os.ReadFile(filepath.Join(root, dir, f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(body), "go test fuzz v1\nstring(") {
				t.Errorf("%s/%s is not a go fuzz corpus entry:\n%s", dir, f.Name(), body)
			}
			total++
		}
	}
	if total != n {
		t.Errorf("EmitCorpus reported %d files, found %d", n, total)
	}
}

// TestShrinkReducesRealViolation exercises the document shrinker on a
// scenario with star repetition: the planted defect fires on any
// document containing the broken type, so the shrinker should strip
// unrelated star children.
func TestShrinkReducesRealViolation(t *testing.T) {
	const schema = `
<!ELEMENT root (item)*>
<!ELEMENT item (name, note)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>`
	source, err := dtd.Parse(schema, "root")
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	target, err := dtd.Parse(schema, "root")
	if err != nil {
		t.Fatalf("target: %v", err)
	}
	doc, err := xmltree.ParseString(
		"<root>" + strings.Repeat("<item><name>v1</name><note>v2</note></item>", 6) + "</root>")
	if err != nil {
		t.Fatalf("doc: %v", err)
	}
	tr := trialForIdentity(t, source, target, doc)
	// Break the target so σd's image cannot conform.
	tr.Target.Prods["note"] = dtd.Empty()
	v := guardPanic(func() *Violation {
		return checkProperty(PropTypeSafety, tr, tr.Doc, nil)
	})
	if v == nil {
		t.Fatal("planted defect was not detected")
	}
	v.Property = PropTypeSafety
	v.Source, v.Target, v.Emb, v.Doc = tr.Source, tr.Target, tr.Emb, tr.Doc
	shrink(v)
	items := 0
	v.Doc.Walk(func(n *xmltree.Node) {
		if n.Label == "item" {
			items++
		}
	})
	if items != 1 {
		t.Errorf("shrunk document keeps %d star children, want 1:\n%s", items, v.Doc)
	}
}

// trialForIdentity builds the identity embedding between two copies of
// the same schema (λ = id, every edge mapped to the one-step path of
// its own label, str edges to text()).
func trialForIdentity(t *testing.T, source, target *dtd.DTD, doc *xmltree.Tree) *Trial {
	t.Helper()
	e := embedding.New(source, target)
	for _, a := range source.Types {
		e.MapType(a, a)
		p := source.Prods[a]
		if p.Kind == dtd.KindStr {
			e.SetPath(embedding.EdgeRef{Parent: a, Child: embedding.StrChild, Occ: 1}, "text()")
			continue
		}
		seen := map[string]int{}
		for _, c := range p.Children {
			seen[c]++
			e.Paths[embedding.EdgeRef{Parent: a, Child: c, Occ: seen[c]}] = identityStep(c, seen[c], p)
		}
	}
	if err := e.Validate(nil); err != nil {
		t.Fatalf("identity embedding invalid: %v", err)
	}
	return &Trial{Source: source, Target: target, Emb: e, Doc: doc}
}

func identityStep(label string, occ int, p dtd.Production) xpath.Path {
	step := xpath.Step{Label: label}
	if p.Kind == dtd.KindConcat && occ > 0 && p.Occurrences(label) > 1 {
		step.Pos = occ
	}
	return xpath.Path{Steps: []xpath.Step{step}}
}

func countNodes(tr *xmltree.Tree) int {
	n := 0
	tr.Walk(func(*xmltree.Node) { n++ })
	return n
}
