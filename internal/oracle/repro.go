package oracle

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Repro is a self-contained, replayable counterexample: everything
// checkProperty needs to reproduce a violation.
type Repro struct {
	Property Property
	Trial    *Trial
	// Query is non-nil for query-driven properties (it is also the
	// single element of Trial.Queries).
	Query xpath.Expr
}

// FormatRepro serializes a violation to the reproducer format: a
// commented header followed by sections for the two schemas, the
// mapping, the document, and (for query-driven properties) the query.
func FormatRepro(v *Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# xse-oracle counterexample (trial %d, seed %d)\n", v.Trial, v.Seed)
	fmt.Fprintf(&b, "# replay: go run ./cmd/xse-oracle -trials 1 -seed %d\n", v.Seed)
	for _, line := range strings.Split(strings.TrimRight(v.Detail, "\n"), "\n") {
		fmt.Fprintf(&b, "# %s\n", line)
	}
	fmt.Fprintf(&b, "== property %s\n", v.Property)
	fmt.Fprintf(&b, "== source-dtd %s\n%s", v.Source.Root, v.Source)
	fmt.Fprintf(&b, "== target-dtd %s\n%s", v.Target.Root, v.Target)
	fmt.Fprintf(&b, "== mapping\n%s", v.Emb.Marshal())
	fmt.Fprintf(&b, "== document\n%s", v.Doc)
	if v.Query != nil {
		fmt.Fprintf(&b, "== query\n%s\n", xpath.String(v.Query))
	}
	return b.String()
}

// ParseRepro loads a reproducer back into a replayable scenario.
func ParseRepro(src string) (*Repro, error) {
	sections := map[string]string{}
	var name string
	var buf strings.Builder
	flush := func() {
		if name != "" {
			sections[name] = buf.String()
		}
		buf.Reset()
	}
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "== ") {
			flush()
			name = strings.TrimSpace(strings.TrimPrefix(line, "== "))
			continue
		}
		if name == "" || strings.HasPrefix(line, "#") {
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	flush()

	section := func(prefix string) (arg, body string, err error) {
		for key, val := range sections {
			if key == prefix {
				return "", val, nil
			}
			if strings.HasPrefix(key, prefix+" ") {
				return strings.TrimSpace(strings.TrimPrefix(key, prefix+" ")), val, nil
			}
		}
		return "", "", fmt.Errorf("oracle: reproducer is missing a %q section", prefix)
	}

	prop, _, err := section("property")
	if err != nil {
		return nil, err
	}
	srcRoot, srcText, err := section("source-dtd")
	if err != nil {
		return nil, err
	}
	source, err := dtd.Parse(srcText, srcRoot)
	if err != nil {
		return nil, fmt.Errorf("oracle: reproducer source schema: %w", err)
	}
	tgtRoot, tgtText, err := section("target-dtd")
	if err != nil {
		return nil, err
	}
	target, err := dtd.Parse(tgtText, tgtRoot)
	if err != nil {
		return nil, fmt.Errorf("oracle: reproducer target schema: %w", err)
	}
	_, mapText, err := section("mapping")
	if err != nil {
		return nil, err
	}
	emb, err := embedding.Unmarshal(mapText, source, target)
	if err != nil {
		return nil, fmt.Errorf("oracle: reproducer mapping: %w", err)
	}
	_, docText, err := section("document")
	if err != nil {
		return nil, err
	}
	doc, err := xmltree.ParseString(docText)
	if err != nil {
		return nil, fmt.Errorf("oracle: reproducer document: %w", err)
	}
	r := &Repro{
		Property: Property(prop),
		Trial:    &Trial{Source: source, Target: target, Emb: emb, Doc: doc},
	}
	if qText, ok := sections["query"]; ok {
		q, err := xpath.Parse(strings.TrimSpace(qText))
		if err != nil {
			return nil, fmt.Errorf("oracle: reproducer query: %w", err)
		}
		r.Query = q
		r.Trial.Queries = []xpath.Expr{q}
	}
	return r, nil
}

// Check replays the reproducer's property and returns the violation it
// witnesses, or nil if the defect no longer reproduces.
func (r *Repro) Check() *Violation {
	return guardPanic(func() *Violation {
		return checkProperty(r.Property, r.Trial, r.Trial.Doc, r.Query)
	})
}

// writeRepro serializes the violation into dir, creating it if needed.
func writeRepro(dir string, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("oracle-%s-trial%04d.repro", v.Property, v.Trial)
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(FormatRepro(v)), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
