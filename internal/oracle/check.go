package oracle

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/anfa"
	"repro/internal/embedding"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// checkTrial runs every property over the scenario and returns the
// violations found, with the scenario attached for shrinking and
// reporting.
func checkTrial(tr *Trial, rep *Report) []Violation {
	var out []Violation
	add := func(p Property, q xpath.Expr, v *Violation) {
		rep.Checks[p]++
		if v == nil {
			return
		}
		v.Property = p
		v.Source, v.Target, v.Emb = tr.Source, tr.Target, tr.Emb
		v.Doc, v.Query = tr.Doc, q
		out = append(out, *v)
	}
	for _, p := range []Property{PropTypeSafety, PropInvert, PropXSLTForward, PropXSLTInverse, PropStreamDiff} {
		p := p
		add(p, nil, guardPanic(func() *Violation {
			return checkProperty(p, tr, tr.Doc, nil)
		}))
	}
	for _, q := range tr.Queries {
		q := q
		nonEmpty := len(xpath.Eval(q, tr.Doc.Root)) > 0
		for _, p := range []Property{PropQueryPreserv, PropANFADiff, PropCompiledDiff, PropAnfaOpt} {
			p := p
			if nonEmpty {
				rep.NonTrivial[p]++
			}
			add(p, q, guardPanic(func() *Violation {
				return checkProperty(p, tr, tr.Doc, q)
			}))
		}
	}
	return out
}

// checkProperty evaluates one property on the scenario with the given
// document (and query, for query-driven properties). It is
// self-contained so the shrinker can replay it on candidate inputs.
func checkProperty(p Property, tr *Trial, doc *xmltree.Tree, q xpath.Expr) *Violation {
	switch p {
	case PropTypeSafety:
		return checkTypeSafety(tr, doc)
	case PropInvert:
		return checkInvert(tr, doc)
	case PropXSLTForward:
		return checkXSLTForward(tr, doc)
	case PropXSLTInverse:
		return checkXSLTInverse(tr, doc)
	case PropQueryPreserv:
		return checkQueryPreservation(tr, doc, q)
	case PropANFADiff:
		return checkANFADifferential(tr, doc, q)
	case PropCompiledDiff:
		return checkCompiledDifferential(tr, doc, q)
	case PropStreamDiff:
		return checkStreamDifferential(tr, doc)
	case PropAnfaOpt:
		return checkAnfaOptDifferential(tr, doc, q)
	}
	return &Violation{Detail: fmt.Sprintf("unknown property %q", p)}
}

// checkStreamDifferential: the streaming engine computes exactly the
// tree path's σd, byte for byte — same output on conforming documents,
// including productions that take the buffered reorder fallback.
func checkStreamDifferential(tr *Trial, doc *xmltree.Tree) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	want := res.Tree.String()
	var out strings.Builder
	if _, err := embedding.StreamApply(context.Background(), tr.Emb, strings.NewReader(doc.String()), &out); err != nil {
		return &Violation{Detail: fmt.Sprintf("streaming σd failed on a conforming document: %v", err)}
	}
	if out.String() != want {
		return &Violation{Detail: fmt.Sprintf(
			"streaming output differs from the tree path:\nstream:\n%s\ntree:\n%s", out.String(), want)}
	}
	return nil
}

// checkTypeSafety: σd is total on conforming documents and its image
// conforms to the target schema (Theorem 4.1).
func checkTypeSafety(tr *Trial, doc *xmltree.Tree) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed on a conforming document: %v", err)}
	}
	if err := res.Tree.Validate(tr.Target); err != nil {
		return &Violation{Detail: fmt.Sprintf("σd(T) does not conform to the target schema: %v", err)}
	}
	return nil
}

// checkInvert: σd⁻¹(σd(T)) is value-isomorphic to T (Theorem 4.1).
func checkInvert(tr *Trial, doc *xmltree.Tree) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	back, err := tr.Emb.Invert(res.Tree)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd⁻¹ failed on σd(T): %v", err)}
	}
	if !xmltree.Equal(back, doc) {
		return &Violation{Detail: "σd⁻¹(σd(T)) differs from T: " + xmltree.Diff(back, doc)}
	}
	return nil
}

// checkXSLTForward: the generated forward stylesheet computes σd.
func checkXSLTForward(tr *Trial, doc *xmltree.Tree) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	sheet, err := xslt.ForwardStylesheet(tr.Emb)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("forward stylesheet generation failed: %v", err)}
	}
	got, err := sheet.Run(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("forward stylesheet run failed: %v", err)}
	}
	if !xmltree.Equal(got, res.Tree) {
		return &Violation{Detail: "XSLT forward output differs from programmatic σd(T): " + xmltree.Diff(got, res.Tree)}
	}
	return nil
}

// checkXSLTInverse: the generated inverse stylesheet recovers T from
// σd(T).
func checkXSLTInverse(tr *Trial, doc *xmltree.Tree) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	sheet, err := xslt.InverseStylesheet(tr.Emb)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("inverse stylesheet generation failed: %v", err)}
	}
	got, err := sheet.Run(res.Tree)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("inverse stylesheet run failed: %v", err)}
	}
	if !xmltree.Equal(got, doc) {
		return &Violation{Detail: "XSLT inverse output differs from T: " + xmltree.Diff(got, doc)}
	}
	return nil
}

// checkQueryPreservation: Q(T) = idM(Tr(Q)(σd(T))) (Theorem 4.2). The
// translated automaton must select exactly the images of Q's answers
// and never a default-fill node.
func checkQueryPreservation(tr *Trial, doc *xmltree.Tree, q xpath.Expr) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	trl, err := translate.New(tr.Emb)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("translator construction failed: %v", err)}
	}
	auto, err := trl.Translate(q)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("translation failed: %v", err)}
	}
	direct := idSet(xpath.IDs(xpath.Eval(q, doc.Root)))
	var mapped []xmltree.NodeID
	for _, n := range auto.Eval(res.Tree.Root) {
		srcID, ok := res.IDM[n.ID]
		if !ok {
			return &Violation{Detail: fmt.Sprintf(
				"translated query selected node %d outside idM's domain (a default-fill or structural node, label %q)",
				n.ID, n.Label)}
		}
		mapped = append(mapped, srcID)
	}
	if got := idSet(mapped); !idSetsEqual(direct, got) {
		return &Violation{Detail: fmt.Sprintf(
			"answer mismatch: Q(T) = %v but idM(Tr(Q)(σd(T))) = %v", direct, got)}
	}
	return nil
}

// checkCompiledDifferential: the compiled evaluation plan agrees with
// the reference tree-walking interpreter on the source document —
// same answer nodes, same first-reached order (a stronger contract
// than the set semantics the other differentials check, because Eval
// is now a thin wrapper over the compiled path and callers observe
// its order).
func checkCompiledDifferential(tr *Trial, doc *xmltree.Tree, q xpath.Expr) *Violation {
	want := xpath.EvalInterpreted(q, doc.Root)
	got := xpath.Compile(q).Run(doc.Root)
	if len(want) != len(got) {
		return &Violation{Detail: fmt.Sprintf(
			"compiled evaluation disagrees with the interpreter: %d vs %d answers (interpreted = %v, compiled = %v)",
			len(want), len(got), xpath.IDs(want), xpath.IDs(got))}
	}
	for i := range want {
		if want[i] != got[i] {
			return &Violation{Detail: fmt.Sprintf(
				"compiled evaluation order diverges at position %d: interpreted = %v, compiled = %v",
				i, xpath.IDs(want), xpath.IDs(got))}
		}
	}
	return nil
}

// checkAnfaOptDifferential: the schema-aware optimizer and the
// compiled ANFA backend preserve the translated query's answer set on
// σd(T) — the raw (unoptimized, interpreted) translation, the
// optimized interpreted automaton and the optimized compiled program
// all select the same nodes. Order is not compared: the optimizer is
// only contracted to preserve the answer set.
func checkAnfaOptDifferential(tr *Trial, doc *xmltree.Tree, q xpath.Expr) *Violation {
	res, err := tr.Emb.Apply(doc)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("σd failed: %v", err)}
	}
	raw, rerr := translateWith(tr.Emb, q, translate.Options{NoOptimize: true})
	opt, oerr := translateWith(tr.Emb, q, translate.Options{})
	if (rerr == nil) != (oerr == nil) {
		return &Violation{Detail: fmt.Sprintf(
			"optimizer changed translatability: raw err = %v, optimized err = %v", rerr, oerr)}
	}
	if rerr != nil {
		return nil // both fail identically upstream; PropQueryPreserv reports it
	}
	want := idSet(xpath.IDs(raw.Eval(res.Tree.Root)))
	gotEval := idSet(xpath.IDs(opt.Eval(res.Tree.Root)))
	if !idSetsEqual(want, gotEval) {
		return &Violation{Detail: fmt.Sprintf(
			"optimized automaton disagrees with the raw translation on σd(T): raw = %v, optimized = %v (states %d -> %d)",
			want, gotEval, raw.NumStates(), opt.NumStates())}
	}
	gotProg := idSet(xpath.IDs(opt.Program().Run(res.Tree.Root)))
	if !idSetsEqual(want, gotProg) {
		return &Violation{Detail: fmt.Sprintf(
			"compiled program disagrees with the raw translation on σd(T): raw = %v, compiled = %v", want, gotProg)}
	}
	return nil
}

// translateWith translates q under explicit options with a fresh
// translator, so the optimized and unoptimized artifacts never share
// state.
func translateWith(emb *embedding.Embedding, q xpath.Expr, opts translate.Options) (*anfa.Automaton, error) {
	trl, err := translate.NewWithOptions(emb, opts)
	if err != nil {
		return nil, err
	}
	return trl.Translate(q)
}

// checkANFADifferential: the automaton M_Q built directly from Q by
// anfa.FromExpr agrees with the reference X_R evaluator on the source
// document.
func checkANFADifferential(tr *Trial, doc *xmltree.Tree, q xpath.Expr) *Violation {
	dq := xpath.DesugarDesc(q, tr.Source.Types)
	auto, err := anfa.FromExpr(dq)
	if err != nil {
		return &Violation{Detail: fmt.Sprintf("ANFA construction failed: %v", err)}
	}
	direct := idSet(xpath.IDs(xpath.Eval(dq, doc.Root)))
	viaANFA := idSet(xpath.IDs(auto.Eval(doc.Root)))
	if !idSetsEqual(direct, viaANFA) {
		return &Violation{Detail: fmt.Sprintf(
			"ANFA evaluation disagrees with direct evaluation: direct = %v, anfa = %v", direct, viaANFA)}
	}
	return nil
}
