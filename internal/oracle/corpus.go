package oracle

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/xpath"
)

// Corpus targets: fuzz-target name → package corpus directory relative
// to the repository root (Go's native fuzzing reads seed corpora from
// testdata/fuzz/<FuzzTarget> in the target's package).
var corpusDirs = map[string]string{
	"FuzzDTDParse":   "internal/dtd/testdata/fuzz/FuzzDTDParse",
	"FuzzXPathParse": "internal/xpath/testdata/fuzz/FuzzXPathParse",
	"FuzzXMLDecode":  "internal/xmltree/testdata/fuzz/FuzzXMLDecode",
}

// EmitCorpus generates cfg.Trials scenarios and seeds the parser fuzz
// corpora under root (the repository root) with the interesting inputs
// they produce: schema texts for FuzzDTDParse, query texts for
// FuzzXPathParse, and document XML for FuzzXMLDecode. perTarget bounds
// the files written per fuzz target. It returns the number of corpus
// files written.
func EmitCorpus(root string, cfg Config, perTarget int) (int, error) {
	cfg = cfg.withDefaults()
	if perTarget <= 0 {
		perTarget = 24
	}
	seeds := map[string][]string{}
	seen := map[string]bool{}
	add := func(target, input string) {
		key := target + "\x00" + input
		if seen[key] || len(seeds[target]) >= perTarget {
			return
		}
		seen[key] = true
		seeds[target] = append(seeds[target], input)
	}
	for i := 0; i < cfg.Trials; i++ {
		r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		tr, err := genTrial(r, cfg)
		if err != nil {
			continue
		}
		add("FuzzDTDParse", tr.Source.String())
		add("FuzzDTDParse", tr.Target.String())
		add("FuzzXMLDecode", tr.Doc.String())
		for _, q := range tr.Queries {
			add("FuzzXPathParse", xpath.String(q))
		}
		for _, p := range tr.Emb.Paths {
			add("FuzzXPathParse", p.String())
		}
	}
	written := 0
	for target, inputs := range seeds {
		dir := filepath.Join(root, corpusDirs[target])
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return written, err
		}
		for i, input := range inputs {
			body := "go test fuzz v1\nstring(" + strconv.Quote(input) + ")\n"
			name := fmt.Sprintf("oracle-seed-%03d", i)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				return written, err
			}
			written++
		}
	}
	return written, nil
}
