package oracle

import (
	"math/rand"

	"repro/internal/fuzzseed"
	"repro/internal/xpath"
)

// EmitCorpus generates cfg.Trials scenarios and seeds the parser fuzz
// corpora under root (the repository root) with the interesting inputs
// they produce: schema texts for FuzzDTDParse, query texts for
// FuzzXPathParse, and document XML for FuzzXMLDecode. perTarget bounds
// the new inputs per fuzz target; entries already present in a corpus
// directory are not duplicated (see fuzzseed.Write). It returns the
// number of corpus files written.
func EmitCorpus(root string, cfg Config, perTarget int) (int, error) {
	cfg = cfg.withDefaults()
	if perTarget <= 0 {
		perTarget = 24
	}
	seeds := map[string][]string{}
	seen := map[string]bool{}
	add := func(target, input string) {
		key := target + "\x00" + input
		if seen[key] || len(seeds[target]) >= perTarget {
			return
		}
		seen[key] = true
		seeds[target] = append(seeds[target], input)
	}
	for i := 0; i < cfg.Trials; i++ {
		r := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		tr, err := genTrial(r, cfg)
		if err != nil {
			continue
		}
		add("FuzzDTDParse", tr.Source.String())
		add("FuzzDTDParse", tr.Target.String())
		add("FuzzXMLDecode", tr.Doc.String())
		add("FuzzStreamMigrate", tr.Doc.String())
		for _, q := range tr.Queries {
			add("FuzzXPathParse", xpath.String(q))
			add("FuzzAnfaOptimize", xpath.String(q)+"\n"+tr.Doc.String())
		}
		for _, p := range tr.Emb.Paths {
			add("FuzzXPathParse", p.String())
		}
	}
	return fuzzseed.Write(root, "oracle-seed", seeds)
}
