package oracle

import (
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Trial is one generated scenario: a synthetic source schema, a noisy
// copy as embedding target, the ground-truth embedding between them, a
// random conforming instance, and random X_R queries over the source.
type Trial struct {
	Source  *dtd.DTD
	Target  *dtd.DTD
	Emb     *embedding.Embedding
	Doc     *xmltree.Tree
	Queries []xpath.Expr
}

// genTrial builds a scenario from the trial's random source. Errors
// indicate generator defects (every synthetic schema must admit its
// truth embedding and random instances), which Run reports as
// violations of the generation property.
func genTrial(r *rand.Rand, cfg Config) (*Trial, error) {
	size := cfg.MinTypes + r.Intn(cfg.MaxTypes-cfg.MinTypes+1)
	// Repeated concatenation children force occurrence-qualified paths
	// (A/B#2 → B[position()=2]) through resolution, instance mapping,
	// translation and inversion — without them the oracle never
	// exercises position annotations at all.
	src, err := workload.SyntheticDTDOpts(r, size, workload.SynthOptions{ConcatRepeatFrac: 0.35})
	if err != nil {
		return nil, fmt.Errorf("synthetic source schema: %w", err)
	}
	level := r.Float64() * cfg.MaxNoise
	nc := workload.Noise(src, workload.NoiseLevel(level), r)
	if err := nc.DTD.Check(); err != nil {
		return nil, fmt.Errorf("noisy target schema invalid: %w", err)
	}
	emb, err := workload.TruthEmbedding(src, nc)
	if err != nil {
		return nil, err
	}
	doc, err := xmltree.Generate(src, r, xmltree.GenOptions{
		StarMax:     cfg.StarMax,
		DepthBudget: cfg.DepthBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("instance generation: %w", err)
	}
	tr := &Trial{Source: src, Target: nc.DTD, Emb: emb, Doc: doc}
	for i := 0; i < cfg.QueriesPerTrial; i++ {
		// Alternate the grammar-directed generator with targeted
		// downward-path queries: the former covers unions, stars and
		// Boolean qualifiers, the latter keeps position() qualifiers on
		// repeated children dense enough to have discriminating power
		// (they are where translation positions are easiest to get
		// wrong, and the grammar generator reaches them rarely).
		var q xpath.Expr
		if i%2 == 0 {
			q = xpath.RandomQuery(r, src, xpath.GenOptions{
				TranslatableOnly: true,
				MaxDepth:         3,
			})
		} else {
			q = targetedQuery(r, src)
		}
		tr.Queries = append(tr.Queries, q)
	}
	return tr, nil
}

// targetedQuery builds a random downward label path from the root,
// attaching position() qualifiers to steps under star or repeating
// parents with high probability and occasionally ending in text().
func targetedQuery(r *rand.Rand, d *dtd.DTD) xpath.Expr {
	cur := d.Root
	var expr xpath.Expr = xpath.Empty{}
	steps := 1 + r.Intn(5)
	for i := 0; i < steps; i++ {
		prod := d.Prods[cur]
		if len(prod.Children) == 0 {
			break
		}
		c := prod.Children[r.Intn(len(prod.Children))]
		var step xpath.Expr = xpath.Label{Name: c}
		positional := prod.Kind == dtd.KindStar || prod.Occurrences(c) > 1
		if positional && r.Intn(4) > 0 {
			step = xpath.Filter{P: step, Q: xpath.QPos{K: 1 + r.Intn(3)}}
		}
		expr = seqOf(expr, step)
		cur = c
	}
	if d.Prods[cur].Kind == dtd.KindStr && r.Intn(2) == 0 {
		expr = seqOf(expr, xpath.Text{})
	}
	return expr
}

func seqOf(l, r xpath.Expr) xpath.Expr {
	if _, ok := l.(xpath.Empty); ok {
		return r
	}
	return xpath.Seq{L: l, R: r}
}
