// Package experiments implements the reproduction of the paper's
// experimental study (§5.2 and the VLDB'05 companion), one driver per
// experiment id of DESIGN.md (E1–E7). Each driver returns a Table whose
// rows match the series the paper reports: heuristic success rates
// against noise (E1) and att accuracy (E2), running time against schema
// size (E3), the instance-mapping, inverse and query-translation
// scaling claims of Theorems 4.1/4.3 (E4–E6), and ablations of the
// search machinery (E7). cmd/xse-bench prints the tables; bench_test.go
// wraps the same drivers as testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/match"
	"repro/internal/reduction"
	"repro/internal/search"
	"repro/internal/translate"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Config scales the experiment drivers.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Trials per configuration point (default 20; Quick reduces work).
	Trials int
	// Quick shrinks sweeps for use inside go test / CI.
	Quick bool
	// SearchTimeout bounds each individual embedding search; a timed-out
	// trial counts as a failure instead of stalling the whole sweep.
	// Zero means no per-search deadline.
	SearchTimeout time.Duration
}

// find runs one embedding search under the Config's per-search
// timeout via search.FindCtx.
func (c Config) find(src, tgt *dtd.DTD, att *embedding.SimMatrix, opts search.Options) (*search.Result, error) {
	ctx := context.Background()
	if c.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.SearchTimeout)
		defer cancel()
	}
	return search.FindCtx(ctx, src, tgt, att, opts)
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		if c.Quick {
			c.Trials = 5
		} else {
			c.Trials = 20
		}
	}
	return c
}

// Table is one reproduced table/figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	for i, w := range widths {
		widths[i] = w
		b.WriteString(strings.Repeat("-", w) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

var heuristics = []search.Heuristic{search.Random, search.QualityOrdered, search.IndepSet}

// E1AccuracyVsNoise sweeps the noise level on copies of corpus schemas
// and reports, per heuristic, the fraction of trials in which a valid
// embedding was found (success) and in which its λ equals the ground
// truth (correct).
func E1AccuracyVsNoise(cfg Config) Table {
	cfg = cfg.withDefaults()
	levels := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	bases := []workload.NamedDTD{
		{Name: "orders", DTD: workload.OrdersDTD()},
		{Name: "biblio", DTD: workload.BiblioDTD()},
	}
	if cfg.Quick {
		levels = []float64{0, 0.25, 0.5}
		bases = bases[:1]
	}
	t := Table{
		ID:      "E1",
		Title:   "heuristic success/correct rate vs. introduced noise (att accuracy 1.0, ambiguity 2)",
		Columns: []string{"schema", "noise", "heuristic", "success", "correct"},
		Notes:   "paper: Random finds a high percentage of correct solutions across noise levels",
	}
	for _, base := range bases {
		for _, level := range levels {
			for _, h := range heuristics {
				succ, corr := 0, 0
				for trial := 0; trial < cfg.Trials; trial++ {
					r := rand.New(rand.NewSource(cfg.Seed + int64(trial)*7919))
					nc := workload.Noise(base.DTD, workload.NoiseLevel(level), r)
					att := match.Synthetic(base.DTD, nc.DTD, nc.Truth,
						match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
					res, err := cfg.find(base.DTD, nc.DTD, att,
						search.Options{Heuristic: h, Seed: cfg.Seed + int64(trial), MaxRestarts: 25})
					if err != nil || res.Embedding == nil {
						continue
					}
					succ++
					if lambdaMatches(res.Embedding, nc.Truth) {
						corr++
					}
				}
				t.Rows = append(t.Rows, []string{
					base.Name,
					fmt.Sprintf("%.0f%%", level*100),
					h.String(),
					pct(succ, cfg.Trials),
					pct(corr, cfg.Trials),
				})
			}
		}
	}
	return t
}

// E2AccuracyVsAtt fixes a noisy pair and sweeps matcher accuracy and
// ambiguity, the experiment behind "a high percentage of correct
// solutions over a wide range of att accuracies".
func E2AccuracyVsAtt(cfg Config) Table {
	cfg = cfg.withDefaults()
	accuracies := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	ambiguities := []int{2, 4}
	if cfg.Quick {
		accuracies = []float64{0.5, 0.75, 1.0}
		ambiguities = []int{2}
	}
	base := workload.OrdersDTD()
	t := Table{
		ID:      "E2",
		Title:   "Random-heuristic success/correct rate vs. att accuracy (orders schema, noise 20%)",
		Columns: []string{"accuracy", "ambiguity", "success", "correct"},
		Notes:   "information-preserving search recovers from imperfect matchers: valid embeddings rank truthful matches",
	}
	for _, amb := range ambiguities {
		for _, acc := range accuracies {
			succ, corr := 0, 0
			for trial := 0; trial < cfg.Trials; trial++ {
				r := rand.New(rand.NewSource(cfg.Seed + int64(trial)*104729))
				nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
				att := match.Synthetic(base, nc.DTD, nc.Truth,
					match.SyntheticOptions{Accuracy: acc, Ambiguity: amb}, r)
				res, err := cfg.find(base, nc.DTD, att,
					search.Options{Heuristic: search.Random, Seed: cfg.Seed + int64(trial), MaxRestarts: 25})
				if err != nil || res.Embedding == nil {
					continue
				}
				succ++
				if lambdaMatches(res.Embedding, nc.Truth) {
					corr++
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.2f", acc),
				fmt.Sprintf("%d", amb),
				pct(succ, cfg.Trials),
				pct(corr, cfg.Trials),
			})
		}
	}
	return t
}

// E3RuntimeVsSize sweeps schema size and reports search time,
// reproducing "running times are in the range of seconds or minutes"
// on "schemas up to a few hundred nodes".
func E3RuntimeVsSize(cfg Config) Table {
	cfg = cfg.withDefaults()
	sizes := []int{25, 50, 100, 200, 400}
	if cfg.Quick {
		sizes = []int{25, 50, 100}
	}
	t := Table{
		ID:      "E3",
		Title:   "Random-heuristic search time vs. schema size (synthetic schemas, noise 20%, ambiguity 2)",
		Columns: []string{"|E1|", "|E2|", "success", "avg time", "max time"},
		Notes:   "paper reports seconds-to-minutes on schemas up to a few hundred nodes",
	}
	trials := cfg.Trials
	if trials > 8 {
		trials = 8
	}
	for _, size := range sizes {
		var total, max time.Duration
		succ := 0
		tgtSize := 0
		for trial := 0; trial < trials; trial++ {
			r := rand.New(rand.NewSource(cfg.Seed + int64(size*1000+trial)))
			base, err := workload.SyntheticDTD(r, size)
			if err != nil {
				continue
			}
			nc := workload.Noise(base, workload.NoiseLevel(0.2), r)
			tgtSize = nc.DTD.Size()
			att := match.Synthetic(base, nc.DTD, nc.Truth,
				match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
			res, err := cfg.find(base, nc.DTD, att,
				search.Options{Heuristic: search.Random, Seed: cfg.Seed + int64(trial), MaxRestarts: 15})
			if err != nil {
				continue
			}
			total += res.Elapsed
			if res.Elapsed > max {
				max = res.Elapsed
			}
			if res.Embedding != nil {
				succ++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmt.Sprintf("%d", tgtSize),
			pct(succ, trials),
			(total / time.Duration(trials)).Round(time.Microsecond).String(),
			max.Round(time.Microsecond).String(),
		})
	}
	return t
}

// E4InstMapScaling measures σd against document size: InstMap is linear
// in the size of the produced document (§4.2).
func E4InstMapScaling(cfg Config) Table {
	cfg = cfg.withDefaults()
	emb := workload.ClassEmbedding()
	sizes := []int{10, 100, 1000, 10000}
	if cfg.Quick {
		sizes = []int{10, 100, 1000}
	}
	t := Table{
		ID:      "E4",
		Title:   "InstMap (σd) scaling on the Figure 1 embedding",
		Columns: []string{"src nodes", "tgt nodes", "time", "ns/tgt node"},
		Notes:   "the per-node cost should stay flat (linear algorithm)",
	}
	for _, n := range sizes {
		doc := classDocument(n)
		start := time.Now()
		res, err := emb.Apply(doc)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", doc.Size()), "error", err.Error(), ""})
			continue
		}
		el := time.Since(start)
		tgtN := res.Tree.Size()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", doc.Size()),
			fmt.Sprintf("%d", tgtN),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(el.Nanoseconds())/float64(tgtN)),
		})
	}
	return t
}

// E5InverseScaling measures σd⁻¹ and checks the round trip, per
// Theorem 4.3(a) (O(|σd(T)|²) worst case; near-linear here because
// navigation is position-directed).
func E5InverseScaling(cfg Config) Table {
	cfg = cfg.withDefaults()
	emb := workload.ClassEmbedding()
	sizes := []int{10, 100, 1000, 10000}
	if cfg.Quick {
		sizes = []int{10, 100, 1000}
	}
	t := Table{
		ID:      "E5",
		Title:   "inverse (σd⁻¹) scaling and round-trip check on the Figure 1 embedding",
		Columns: []string{"tgt nodes", "time", "ns/tgt node", "round trip"},
	}
	for _, n := range sizes {
		doc := classDocument(n)
		res, err := emb.Apply(doc)
		if err != nil {
			continue
		}
		start := time.Now()
		back, err := emb.Invert(res.Tree)
		el := time.Since(start)
		ok := err == nil && xmltree.Equal(doc, back)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Tree.Size()),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(el.Nanoseconds())/float64(res.Tree.Size())),
			fmt.Sprintf("%v", ok),
		})
	}
	return t
}

// E6QueryTranslation sweeps query size and reports translation time and
// automaton size against the O(|Q|·|σ|·|S1|) bound of Theorem 4.3(b),
// plus the answer-preservation check of Theorem 4.2.
func E6QueryTranslation(cfg Config) Table {
	cfg = cfg.withDefaults()
	emb := workload.ClassEmbedding()
	tr, err := translate.New(emb)
	if err != nil {
		return Table{ID: "E6", Title: err.Error()}
	}
	t := Table{
		ID:      "E6",
		Title:   "query translation on the Figure 1 embedding (random translatable X_R queries)",
		Columns: []string{"|Q| bucket", "queries", "avg |Tr(Q)|", "bound ratio", "avg time", "preserved"},
		Notes:   "bound ratio = |Tr(Q)| / (|Q|·|σ|·|S1|), must stay below a small constant",
	}
	r := rand.New(rand.NewSource(cfg.Seed + 61))
	doc := classDocument(60)
	res, err := emb.Apply(doc)
	if err != nil {
		return Table{ID: "E6", Title: err.Error()}
	}
	type bucket struct {
		lo, hi int
		n      int
		size   int
		ratio  float64
		dur    time.Duration
		pres   int
	}
	buckets := []*bucket{{lo: 1, hi: 5}, {lo: 6, hi: 12}, {lo: 13, hi: 25}, {lo: 26, hi: 60}}
	queries := 40 * cfg.Trials / 5
	sigma := emb.PathSize()
	s1 := emb.Source.Size()
	for i := 0; i < queries; i++ {
		q := xpath.RandomQuery(r, emb.Source, xpath.GenOptions{MaxDepth: 2 + r.Intn(4), TranslatableOnly: true})
		qs := xpath.Size(q)
		var bk *bucket
		for _, b := range buckets {
			if qs >= b.lo && qs <= b.hi {
				bk = b
			}
		}
		if bk == nil {
			continue
		}
		start := time.Now()
		auto, err := tr.Translate(q)
		el := time.Since(start)
		if err != nil {
			continue
		}
		bk.n++
		bk.size += auto.Size()
		bk.ratio += float64(auto.Size()) / float64(qs*sigma*s1)
		bk.dur += el
		want := xpath.Eval(q, doc.Root)
		got := auto.Eval(res.Tree.Root)
		if preserved(want, got, res) {
			bk.pres++
		}
	}
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-%d", b.lo, b.hi),
			fmt.Sprintf("%d", b.n),
			fmt.Sprintf("%.0f", float64(b.size)/float64(b.n)),
			fmt.Sprintf("%.3f", b.ratio/float64(b.n)),
			(b.dur / time.Duration(b.n)).Round(time.Microsecond).String(),
			pct(b.pres, b.n),
		})
	}
	return t
}

// E7Ablation contrasts (a) the PTIME unambiguous case against ambiguous
// att, (b) Random against the exact solver on small schemas, and (c)
// satisfiable against unsatisfiable 3SAT adversarial instances.
func E7Ablation(cfg Config) Table {
	cfg = cfg.withDefaults()
	t := Table{
		ID:      "E7",
		Title:   "ablations: ambiguity, exactness, adversarial instances",
		Columns: []string{"scenario", "config", "success", "avg time", "avg steps"},
	}
	// (a) ambiguity sweep on the class->school pair.
	src, tgt := workload.ClassDTD(), workload.SchoolDTD()
	truth := workload.ClassEmbedding().Lambda
	for _, amb := range []int{1, 2, 4, 8} {
		var dur time.Duration
		steps, succ := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			att := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: amb}, r)
			res, err := cfg.find(src, tgt, att, search.Options{Heuristic: search.Random, Seed: int64(trial)})
			if err != nil {
				continue
			}
			dur += res.Elapsed
			steps += res.Steps
			if res.Embedding != nil {
				succ++
			}
		}
		t.Rows = append(t.Rows, []string{
			"ambiguity (class→school)",
			fmt.Sprintf("k=%d", amb),
			pct(succ, cfg.Trials),
			(dur / time.Duration(cfg.Trials)).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", steps/cfg.Trials),
		})
	}
	// (b) Random vs Exact on small synthetic pairs.
	for _, h := range []search.Heuristic{search.Random, search.Exact} {
		var dur time.Duration
		succ := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rand.New(rand.NewSource(cfg.Seed + 31*int64(trial)))
			base, err := workload.SyntheticDTD(r, 10)
			if err != nil {
				continue
			}
			nc := workload.Noise(base, workload.NoiseLevel(0.3), r)
			att := match.Synthetic(base, nc.DTD, nc.Truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 2}, r)
			res, err := cfg.find(base, nc.DTD, att, search.Options{Heuristic: h, Seed: int64(trial)})
			if err != nil {
				continue
			}
			dur += res.Elapsed
			if res.Embedding != nil {
				succ++
			}
		}
		t.Rows = append(t.Rows, []string{
			"heuristic vs exact (|E1|=10)",
			h.String(),
			pct(succ, cfg.Trials),
			(dur / time.Duration(cfg.Trials)).Round(time.Microsecond).String(),
			"",
		})
	}
	// (c) parallel restarts (implementation ablation): same workload as
	// (a) at k=8, with 1 and 4 workers.
	for _, workers := range []int{1, 4} {
		var dur time.Duration
		succ := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			r := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			att := match.Synthetic(src, tgt, truth, match.SyntheticOptions{Accuracy: 1, Ambiguity: 8}, r)
			res, err := cfg.find(src, tgt, att, search.Options{Heuristic: search.Random, Seed: int64(trial), Parallel: workers})
			if err != nil {
				continue
			}
			dur += res.Elapsed
			if res.Embedding != nil {
				succ++
			}
		}
		t.Rows = append(t.Rows, []string{
			"parallel restarts (k=8)",
			fmt.Sprintf("workers=%d", workers),
			pct(succ, cfg.Trials),
			(dur / time.Duration(cfg.Trials)).Round(time.Microsecond).String(),
			"",
		})
	}
	// (d) 3SAT adversarial instances.
	sat := reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{1, 2, 3}, {-1, 2, 3}, {1, -2, 3}}}
	unsat := reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}}
	for _, tc := range []struct {
		name string
		f    reduction.Formula
	}{{"satisfiable", sat}, {"unsatisfiable", unsat}} {
		s1, s2, att, err := reduction.Schemas(tc.f)
		if err != nil {
			continue
		}
		start := time.Now()
		res, err := cfg.find(s1, s2, att, search.Options{Heuristic: search.Exact})
		el := time.Since(start)
		found := err == nil && res.Embedding != nil
		t.Rows = append(t.Rows, []string{
			"3SAT reduction (exact)",
			tc.name,
			fmt.Sprintf("%v", found),
			el.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.Steps),
		})
	}
	return t
}

// All runs every experiment.
func All(cfg Config) []Table {
	return []Table{
		E1AccuracyVsNoise(cfg),
		E2AccuracyVsAtt(cfg),
		E3RuntimeVsSize(cfg),
		E4InstMapScaling(cfg),
		E5InverseScaling(cfg),
		E6QueryTranslation(cfg),
		E7Ablation(cfg),
	}
}

// ByID returns one experiment by id ("e1".."e7").
func ByID(id string, cfg Config) (Table, bool) {
	switch strings.ToLower(id) {
	case "e1":
		return E1AccuracyVsNoise(cfg), true
	case "e2":
		return E2AccuracyVsAtt(cfg), true
	case "e3":
		return E3RuntimeVsSize(cfg), true
	case "e4":
		return E4InstMapScaling(cfg), true
	case "e5":
		return E5InverseScaling(cfg), true
	case "e6":
		return E6QueryTranslation(cfg), true
	case "e7":
		return E7Ablation(cfg), true
	}
	return Table{}, false
}

func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(total))
}

func lambdaMatches(e *embedding.Embedding, truth map[string]string) bool {
	for a, b := range truth {
		if e.Lambda[a] != b {
			return false
		}
	}
	return true
}

func preserved(want, got []*xmltree.Node, res *embedding.Result) bool {
	if len(want) != len(got) {
		return false
	}
	seen := map[xmltree.NodeID]int{}
	for _, n := range want {
		seen[n.ID]++
	}
	for _, n := range got {
		srcID, ok := res.IDM[n.ID]
		if !ok || seen[srcID] == 0 {
			return false
		}
		seen[srcID]--
	}
	return true
}

// classDocument builds a class document with n classes, chained so that
// roughly a third are prerequisites (exercising recursion).
func classDocument(n int) *xmltree.Tree {
	t := &xmltree.Tree{}
	root := t.NewElement("db")
	t.Root = root
	for i := 0; i < n; i++ {
		cls := newClass(t, i)
		if i%3 == 0 && i+1 < n {
			// Give this class a prerequisite chain of one.
			i++
			pre := newClass(t, i)
			// type/regular/prereq/class
			ty := t.NewElement("type")
			reg := t.NewElement("regular")
			prq := t.NewElement("prereq")
			xmltree.Append(reg, prq)
			xmltree.Append(ty, reg)
			xmltree.Append(prq, pre)
			// Replace the project type with the regular chain.
			cls.Children[2] = ty
			ty.Parent = cls
		}
		xmltree.Append(root, cls)
	}
	return t
}

func newClass(t *xmltree.Tree, i int) *xmltree.Node {
	cls := t.NewElement("class")
	cno := t.NewElement("cno")
	xmltree.Append(cno, t.NewText(fmt.Sprintf("CS%03d", i)))
	title := t.NewElement("title")
	xmltree.Append(title, t.NewText(fmt.Sprintf("Course %d", i)))
	ty := t.NewElement("type")
	prj := t.NewElement("project")
	xmltree.Append(prj, t.NewText("p"))
	xmltree.Append(ty, prj)
	xmltree.Append(cls, cno)
	xmltree.Append(cls, title)
	xmltree.Append(cls, ty)
	return cls
}
