package experiments_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestAllQuick runs every experiment driver in quick mode and sanity
// checks the reported shapes against the paper's claims.
func TestAllQuick(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	tables := experiments.All(cfg)
	if len(tables) != 7 {
		t.Fatalf("got %d tables, want 7", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		if s := tb.String(); !strings.Contains(s, tb.ID) {
			t.Errorf("%s: String() lacks id", tb.ID)
		}
	}
	// E1 at zero noise: success must be 100% for every heuristic.
	e1 := tables[0]
	for _, row := range e1.Rows {
		if row[1] == "0%" && row[3] != "100%" {
			t.Errorf("E1 zero-noise success = %s for %s, want 100%%", row[3], row[2])
		}
	}
	// E5 round trips must all hold.
	for _, row := range tables[4].Rows {
		if row[3] != "true" {
			t.Errorf("E5 round trip failed: %v", row)
		}
	}
	// E7's 3SAT rows: satisfiable found, unsatisfiable not.
	for _, row := range tables[6].Rows {
		if row[0] != "3SAT reduction (exact)" {
			continue
		}
		want := "true"
		if row[1] == "unsatisfiable" {
			want = "false"
		}
		if row[2] != want {
			t.Errorf("E7 3SAT %s: found=%s want %s", row[1], row[2], want)
		}
	}
}

func TestByID(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Quick: true}
	if _, ok := experiments.ByID("E4", cfg); !ok {
		t.Error("ByID(E4) not found")
	}
	if _, ok := experiments.ByID("e99", cfg); ok {
		t.Error("ByID(e99) should fail")
	}
}
