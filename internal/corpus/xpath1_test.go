package corpus

import (
	"strings"
	"testing"

	"repro/internal/xpath"
)

func TestToXPath1(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"newsitem/headline/text()", "/*/newsitem/headline/text()"},
		{".", "/*"},
		{"newsitem[body/para]/byline", "/*/newsitem[body/para]/byline"},
		{"newsitem/body/para[position() = 1]", "/*/newsitem/body/para[position() = 1]"},
		{"newsitem[headline/text() = 'v5']/dateline", "/*/newsitem[headline/text() = 'v5']/dateline"},
		{"(a | b)/c", "(/*/a | /*/b)/c"},
		{"a//b", "/*/a/descendant-or-self::node()/b"},
		{"a[not(b) and (c or d)]", "/*/a[(not(b) and (c or d))]"},
		{"a[.]", "/*/a[.]"},
		{"a[position() = 2][b]", "/*/a[position() = 2][b]"},
	}
	for _, c := range cases {
		e, err := xpath.Parse(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		got, err := ToXPath1(e)
		if err != nil {
			t.Errorf("ToXPath1(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ToXPath1(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestToXPath1Rejects(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string
	}{
		{"a/b*", "Kleene star"},
		{"(a/b)[position() = 1]", "positional qualifier on composite path"},
		{"(a | b)[position() = 2]", "positional qualifier on composite path"},
		{"a[not(position() = 1) or b]/c", ""}, // position on a plain step is fine even nested in Booleans
	}
	for _, c := range cases {
		e, err := xpath.Parse(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		got, err := ToXPath1(e)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ToXPath1(%q): unexpected error %v", c.in, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ToXPath1(%q) = %q, want error containing %q", c.in, got, c.wantErr)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ToXPath1(%q) error %q, want %q", c.in, err, c.wantErr)
		}
	}
}

func TestXPath1Lit(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "'plain'"},
		{"it's", `"it's"`},
		{`say "hi"`, `'say "hi"'`},
		{`both ' and "`, `concat('both ', "'", ' and "')`},
		{"'", `"'"`},
		{`'"'`, `concat("'", '"', "'")`},
	}
	for _, c := range cases {
		if got := xpath1Lit(c.in); got != c.want {
			t.Errorf("xpath1Lit(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestCorpusQueriesConvert pins the contract the differential harness
// relies on: every curated corpus query either compiles to XPath 1.0
// or uses the Kleene star (the one X_R construct outside the shared
// fragment).
func TestCorpusQueriesConvert(t *testing.T) {
	for _, p := range MustPairs() {
		for i, q := range p.Queries {
			if _, err := ToXPath1(q); err != nil {
				if strings.Contains(err.Error(), "Kleene star") {
					continue
				}
				t.Errorf("%s: query %q: %v", p.Name, p.QueryTexts[i], err)
			}
		}
	}
}
