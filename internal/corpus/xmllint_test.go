//go:build xmllint

package corpus

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// xmllintBin resolves the external binary once per test, skipping
// (not failing) where it is absent so `-tags xmllint` stays runnable
// on any machine; `make corpus-diff` is the supported entry point.
func xmllintBin(t *testing.T) string {
	t.Helper()
	bin, err := lookupXmllint()
	if err != nil {
		t.Skipf("xmllint not found (set $XMLLINT or install libxml2): %v", err)
	}
	return bin
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestXmllintDTDConformance cross-validates both ends of the data
// plane against libxml2's DTD validator: generated source instances
// must be valid per the raw source DTD text, and migrated documents
// must be valid per the raw target DTD text. This checks the
// generator, the migrator AND our own Validate against an independent
// implementation.
func TestXmllintDTDConformance(t *testing.T) {
	bin := xmllintBin(t)
	for _, p := range MustPairs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			dir := t.TempDir()
			srcDTD := writeFile(t, dir, "source.dtd", p.SourceText)
			tgtDTD := writeFile(t, dir, "target.dtd", p.TargetText)

			att := match.Lexical(p.Source, p.Target, 0)
			res, err := search.Find(p.Source, p.Target, att, search.Options{
				Heuristic: search.QualityOrdered, Seed: 1, MaxRestarts: 200, Obs: obs.Nop(),
			})
			if err != nil || res.Embedding == nil {
				t.Fatalf("no embedding for %s (err=%v)", p.Name, err)
			}

			for i := 0; i < 2; i++ {
				doc, err := GenerateSized(p.Source, int64(1+i*7919), 200)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				docPath := writeFile(t, dir, "doc.xml", doc.StringCompact())
				if err := dtdValidate(bin, srcDTD, docPath); err != nil {
					t.Errorf("generated instance rejected by xmllint: %v", err)
				}
				mres, err := res.Embedding.Apply(doc)
				if err != nil {
					t.Fatalf("migrate: %v", err)
				}
				migPath := writeFile(t, dir, "migrated.xml", mres.Tree.StringCompact())
				if err := dtdValidate(bin, tgtDTD, migPath); err != nil {
					t.Errorf("migrated document rejected by xmllint: %v", err)
				}
			}
		})
	}
}

// TestXmllintQueryDifferential cross-validates the X_R evaluator
// against xmllint --xpath on the shared XPath 1.0 fragment: curated
// plus generated queries over generated instances, compared as
// multisets of (name, normalized string-value) rows. Any divergence
// fails.
func TestXmllintQueryDifferential(t *testing.T) {
	bin := xmllintBin(t)
	for _, p := range MustPairs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			dir := t.TempDir()
			doc, err := GenerateSized(p.Source, 1, 300)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			docPath := writeFile(t, dir, "doc.xml", doc.StringCompact())

			queries := append([]xpath.Expr(nil), p.Queries...)
			r := rand.New(rand.NewSource(17))
			for i := 0; i < 8; i++ {
				queries = append(queries, xpath.RandomQuery(r, p.Source, xpath.GenOptions{TranslatableOnly: true, MaxDepth: 3}))
			}
			compared := 0
			for _, q := range queries {
				if _, err := ToXPath1(q); err != nil {
					continue // outside the shared fragment (Kleene star etc.)
				}
				compared++
				diff, err := diffQuery(bin, docPath, q, doc.Root)
				if err != nil {
					t.Fatalf("xmllint probe: %v", err)
				}
				if diff != "" {
					t.Errorf("divergence: %s", diff)
				}
			}
			if compared == 0 {
				t.Errorf("no query fell in the shared fragment — differential vacuous")
			}
			t.Logf("%s: %d queries cross-checked", p.Name, compared)
		})
	}
}

// TestXmllintRoundTripRegressions drives the satellite round-trip
// fixes through the external parser: documents with CR character
// references and CDATA close delimiters must be well-formed XML per
// xmllint after our serialization.
func TestXmllintRoundTripRegressions(t *testing.T) {
	bin := xmllintBin(t)
	dir := t.TempDir()
	for name, text := range map[string]string{
		"cr":          "x\ry",
		"cdata-close": "x]]>y",
		"mixed":       "a\r\nb]]>c&<>'\"",
	} {
		tr := &xmltree.Tree{}
		tr.Root = tr.NewElement("a")
		xmltree.Append(tr.Root, tr.NewText(text))
		p := writeFile(t, dir, name+".xml", tr.StringCompact())
		if _, err := runXmllint(bin, "--noout", p); err != nil {
			t.Errorf("%s: serialized document is not well-formed XML: %v", name, err)
		}
	}
}
