package corpus

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/xmltree"
)

// GenerateSized produces a conforming instance of d with roughly
// targetNodes nodes (within a factor of the schema's branching
// granularity). Size is controlled by escalating the star width and
// depth budget of the underlying grammar-directed generator until the
// target is reached, so callers get "a small document" or "a 50k-node
// document" from one knob. Generation is deterministic per seed.
//
// The returned document always validates against d. targetNodes <= 0
// selects a small default (~200 nodes).
func GenerateSized(d *dtd.DTD, seed int64, targetNodes int) (*xmltree.Tree, error) {
	if targetNodes <= 0 {
		targetNodes = 200
	}
	r := rand.New(rand.NewSource(seed))
	opts := xmltree.GenOptions{
		StarMax:     3,
		DepthBudget: 12,
		// The size escalation loop needs headroom above the target;
		// documents are bounded at 4x so a wide star cannot blow the
		// default node guard while hunting for the right width.
		Limits: guard.Limits{MaxNodes: 4*targetNodes + 64},
	}
	var best *xmltree.Tree
	for attempt := 0; attempt < 12; attempt++ {
		t, err := xmltree.Generate(d, r, opts)
		if err != nil {
			// A width overshoot past the node bound is retried at the
			// same settings with fresh randomness; other errors are
			// schema defects and surface immediately.
			var le *guard.LimitError
			if errors.As(err, &le) {
				continue
			}
			return nil, fmt.Errorf("corpus: generate %q instance: %w", d.Root, err)
		}
		if best == nil || t.Size() > best.Size() {
			best = t
		}
		if best.Size() >= targetNodes {
			return best, nil
		}
		opts.StarMax *= 2
		opts.DepthBudget += 4
	}
	if best == nil {
		return nil, fmt.Errorf("corpus: could not generate a %d-node instance of %q within the escalation budget", targetNodes, d.Root)
	}
	return best, nil
}
