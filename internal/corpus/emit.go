package corpus

import (
	"repro/internal/fuzzseed"
)

// EmitFuzzSeeds seeds the parser fuzz corpora under root (the
// repository root) with real-world inputs derived from the corpus:
// each pair's raw DTD texts for FuzzDTDParse, its curated query texts
// for FuzzXPathParse, and a small generated instance (compact
// serialization) for FuzzXMLDecode. Entries already present are not
// duplicated, so re-running is idempotent. It returns the number of
// corpus files written.
func EmitFuzzSeeds(root string) (int, error) {
	pairs, err := Pairs()
	if err != nil {
		return 0, err
	}
	seeds := map[string][]string{}
	for _, p := range pairs {
		seeds["FuzzDTDParse"] = append(seeds["FuzzDTDParse"], p.SourceText, p.TargetText)
		seeds["FuzzXPathParse"] = append(seeds["FuzzXPathParse"], p.QueryTexts...)
		doc, err := GenerateSized(p.Source, 1, 120)
		if err != nil {
			return 0, err
		}
		seeds["FuzzXMLDecode"] = append(seeds["FuzzXMLDecode"], doc.StringCompact())
	}
	return fuzzseed.Write(root, "corpus-seed", seeds)
}
