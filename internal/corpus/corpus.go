// Package corpus carries the real-world schema-evolution workload: a
// checked-in set of public DTDs (DBLP, Mondial, XMark, a NewsML-style
// feed) adapted to the paper's normal form, each paired with a
// hand-written "evolved" variant that the original provably embeds
// into, plus representative X_R queries over each source schema. On
// top of the corpus sits a runner (Run) that drives the full pipeline
// per pair — embedding search under every heuristic, instance
// migration, and translated-query preservation — and emits a
// machine-readable quality report, giving the search heuristics their
// first realistic comparison beyond synthetic schemas.
//
// An optional differential layer (build tag "xmllint", see
// xmllint_diff.go) cross-validates the X_R evaluator and the migrated
// documents against libxml2's xmllint on the shared XPath 1.0
// fragment; the core package stays stdlib-only.
package corpus

import (
	"bufio"
	"embed"
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

//go:embed testdata
var corpusFS embed.FS

// Pair is one schema-evolution scenario: a real-world source schema
// and its hand-evolved target, with curated source-side queries.
type Pair struct {
	// Name is the corpus directory name (dblp, mondial, ...).
	Name string
	// Source and Target are the parsed, normalized schemas.
	Source, Target *dtd.DTD
	// SourceText and TargetText are the raw DTD file contents, handed
	// verbatim to external validators (xmllint --dtdvalid).
	SourceText, TargetText string
	// Queries are the curated X_R queries over the source schema.
	Queries []xpath.Expr
	// QueryTexts are the corresponding source texts, index-aligned
	// with Queries.
	QueryTexts []string
}

// Pairs loads every schema-evolution pair in the corpus, sorted by
// name. The corpus is embedded, so loading cannot depend on the
// working directory.
func Pairs() ([]Pair, error) {
	entries, err := corpusFS.ReadDir("testdata")
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	var out []Pair
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		p, err := loadPair(e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("corpus: no schema pairs embedded")
	}
	return out, nil
}

// MustPairs is Pairs panicking on error, for use in tests and
// benchmarks over the checked-in corpus (which loading must accept).
func MustPairs() []Pair {
	ps, err := Pairs()
	if err != nil {
		panic(err)
	}
	return ps
}

// PairByName returns the named pair.
func PairByName(name string) (Pair, error) {
	ps, err := Pairs()
	if err != nil {
		return Pair{}, err
	}
	for _, p := range ps {
		if p.Name == name {
			return p, nil
		}
	}
	return Pair{}, fmt.Errorf("corpus: no pair named %q", name)
}

func loadPair(name string) (Pair, error) {
	dir := path.Join("testdata", name)
	srcText, err := corpusFS.ReadFile(path.Join(dir, "source.dtd"))
	if err != nil {
		return Pair{}, fmt.Errorf("corpus: %s: %w", name, err)
	}
	tgtText, err := corpusFS.ReadFile(path.Join(dir, "target.dtd"))
	if err != nil {
		return Pair{}, fmt.Errorf("corpus: %s: %w", name, err)
	}
	src, err := dtd.Parse(string(srcText), "")
	if err != nil {
		return Pair{}, fmt.Errorf("corpus: %s: source.dtd: %w", name, err)
	}
	tgt, err := dtd.Parse(string(tgtText), "")
	if err != nil {
		return Pair{}, fmt.Errorf("corpus: %s: target.dtd: %w", name, err)
	}
	p := Pair{
		Name:       name,
		Source:     src,
		Target:     tgt,
		SourceText: string(srcText),
		TargetText: string(tgtText),
	}
	qbytes, err := corpusFS.ReadFile(path.Join(dir, "queries.xq"))
	if err != nil {
		return Pair{}, fmt.Errorf("corpus: %s: %w", name, err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(qbytes)))
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := xpath.Parse(line)
		if err != nil {
			return Pair{}, fmt.Errorf("corpus: %s: queries.xq line %d: %w", name, ln, err)
		}
		p.Queries = append(p.Queries, q)
		p.QueryTexts = append(p.QueryTexts, line)
	}
	return p, nil
}
