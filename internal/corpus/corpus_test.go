package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/search"
)

// TestPairsLoad asserts the embedded corpus parses: every pair has
// consistent schemas, parses its curated queries, and includes the
// four real-world scenarios the workload promises.
func TestPairsLoad(t *testing.T) {
	pairs := MustPairs()
	want := map[string]bool{"dblp": true, "mondial": true, "newsml": true, "xmark": true}
	for _, p := range pairs {
		delete(want, p.Name)
		if err := p.Source.Check(); err != nil {
			t.Errorf("%s: source schema: %v", p.Name, err)
		}
		if err := p.Target.Check(); err != nil {
			t.Errorf("%s: target schema: %v", p.Name, err)
		}
		if len(p.Queries) == 0 {
			t.Errorf("%s: no curated queries", p.Name)
		}
		if len(p.Queries) != len(p.QueryTexts) {
			t.Errorf("%s: queries and texts misaligned", p.Name)
		}
	}
	for name := range want {
		t.Errorf("missing corpus pair %q", name)
	}
}

// TestPairsNormalForm asserts each DTD file is already in the paper's
// normal form: parsing must not have introduced synthetic types, so
// that instances of the parsed schema validate against the raw DTD
// text under an external validator.
func TestPairsNormalForm(t *testing.T) {
	for _, p := range MustPairs() {
		for _, ty := range append(append([]string(nil), p.Source.Types...), p.Target.Types...) {
			for _, c := range ty {
				if c == '.' {
					t.Errorf("%s: normalization introduced synthetic type %q — keep corpus DTDs in normal form", p.Name, ty)
					break
				}
			}
		}
	}
}

// TestEveryPairEmbeds asserts each evolution pair admits an embedding
// that at least one heuristic finds under the corpus budgets — the
// corpus-wide invariant everything else builds on.
func TestEveryPairEmbeds(t *testing.T) {
	for _, p := range MustPairs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			att := match.Lexical(p.Source, p.Target, 0)
			res, err := search.Find(p.Source, p.Target, att, search.Options{
				Heuristic: search.QualityOrdered, Seed: 1, MaxRestarts: 200,
				Obs: obs.Nop(),
			})
			if err != nil {
				t.Fatalf("search: %v", err)
			}
			if res.Embedding == nil {
				t.Fatalf("QualityOrdered found no embedding (restarts=%d steps=%d)", res.Restarts, res.Steps)
			}
			if err := res.Embedding.Validate(att); err != nil {
				t.Fatalf("found embedding fails validation: %v", err)
			}
		})
	}
}

// TestGenerateSized asserts the size knob actually controls document
// size and the result conforms.
func TestGenerateSized(t *testing.T) {
	for _, p := range MustPairs() {
		small, err := GenerateSized(p.Source, 1, 50)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		large, err := GenerateSized(p.Source, 1, 2000)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := small.Validate(p.Source); err != nil {
			t.Errorf("%s: small instance invalid: %v", p.Name, err)
		}
		if err := large.Validate(p.Source); err != nil {
			t.Errorf("%s: large instance invalid: %v", p.Name, err)
		}
		if large.Size() < 2000 {
			t.Errorf("%s: requested ~2000 nodes, got %d", p.Name, large.Size())
		}
		if small.Size() >= large.Size() {
			t.Errorf("%s: size knob has no effect: small=%d large=%d", p.Name, small.Size(), large.Size())
		}
		// Determinism per seed.
		again, err := GenerateSized(p.Source, 1, 50)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if small.String() != again.String() {
			t.Errorf("%s: generation is not deterministic per seed", p.Name)
		}
	}
}

// TestRunEndToEnd drives the full pipeline on every pair with small
// documents and asserts the acceptance invariants: every pair is
// covered by at least one heuristic and there are zero pipeline
// violations.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is seconds-long; skipped with -short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	rep, err := Run(ctx, RunConfig{
		Docs:     2,
		DocNodes: 150,
		Obs:      obs.Nop(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(rep.Pairs); got < 4 {
		t.Fatalf("expected >= 4 pairs, got %d", got)
	}
	if un := rep.Uncovered(); len(un) > 0 {
		t.Errorf("pairs with no embedding found by any heuristic: %v", un)
	}
	if v := rep.Violations(); v != 0 {
		t.Errorf("pipeline violations: %d\n%s", v, rep.Table())
	}
	// The report must round-trip as JSON (the machine-readable
	// contract of make corpus).
	blob, err := rep.JSON()
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("json round-trip: %v", err)
	}
	if len(back.Pairs) != len(rep.Pairs) {
		t.Errorf("json round-trip lost pairs")
	}
	// Every row carries the rejection breakdown (possibly all zero),
	// and the table renders one line per row plus the header.
	rows := 0
	for _, p := range back.Pairs {
		for _, row := range p.Rows {
			rows++
			if row.Rejections == nil {
				t.Errorf("%s/%s: no rejection breakdown", row.Pair, row.Heuristic)
			}
		}
	}
	tbl := rep.RejectionTable()
	if !strings.Contains(tbl, "lambda_empty") || !strings.Contains(tbl, "prefix_free") {
		t.Errorf("rejection table missing headers:\n%s", tbl)
	}
	if got := strings.Count(tbl, "\n"); got != rows+1 {
		t.Errorf("rejection table has %d lines, want %d rows + header", got, rows)
	}
}

// TestRunSelectsPairs asserts pair filtering and the unknown-pair
// error path.
func TestRunSelectsPairs(t *testing.T) {
	ctx := context.Background()
	rep, err := Run(ctx, RunConfig{
		Pairs:      []string{"newsml"},
		Heuristics: []search.Heuristic{search.QualityOrdered},
		Docs:       1,
		DocNodes:   60,
		Obs:        obs.Nop(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Pairs) != 1 || rep.Pairs[0].Pair != "newsml" {
		t.Fatalf("pair filter failed: %+v", rep.Pairs)
	}
	if _, err := Run(ctx, RunConfig{Pairs: []string{"nope"}}); !errors.Is(err, ErrUnknownPair) {
		t.Fatalf("expected ErrUnknownPair, got %v", err)
	}
}
