package corpus

import (
	"fmt"
	"strings"

	"repro/internal/xpath"
)

// ToXPath1 compiles an X_R expression over a source schema into an
// equivalent XPath 1.0 expression rooted at the document element,
// suitable for handing to an external XPath engine (xmllint) in the
// differential harness. The two languages share the child fragment:
//
//   - child steps, text(), composition, union, filters, and the
//     descendant-or-self axis all carry over directly;
//   - the Kleene star p* has no XPath 1.0 counterpart and is rejected;
//   - position() = k qualifiers carry over only on single-step paths,
//     where XPath's per-context-node predicate numbering coincides
//     with X_R's per-context selection order. On composite paths the
//     two semantics diverge (XPath numbers per innermost step), so
//     those are rejected rather than silently mistranslated.
//
// The result selects the same node SET as the X_R evaluator; result
// order may differ (X_R uses first-reached order, XPath 1.0 document
// order), so differential comparisons must be order-insensitive.
func ToXPath1(e xpath.Expr) (string, error) {
	return xp1(e, "/*")
}

// xp1 renders e as an XPath 1.0 expression extending ctx, an
// expression that selects the context node-set. Union results are
// parenthesized so they remain extensible as a FilterExpr ('(a|b)/c'
// is valid XPath 1.0; 'a|b/c' would re-associate).
func xp1(e xpath.Expr, ctx string) (string, error) {
	switch e := e.(type) {
	case xpath.Empty:
		return ctx, nil
	case xpath.Label:
		return ctx + "/" + e.Name, nil
	case xpath.Text:
		return ctx + "/text()", nil
	case xpath.Seq:
		l, err := xp1(e.L, ctx)
		if err != nil {
			return "", err
		}
		return xp1(e.R, l)
	case xpath.Desc:
		l, err := xp1(e.L, ctx)
		if err != nil {
			return "", err
		}
		return xp1(e.R, l+"/descendant-or-self::node()")
	case xpath.Union:
		l, err := xp1(e.L, ctx)
		if err != nil {
			return "", err
		}
		r, err := xp1(e.R, ctx)
		if err != nil {
			return "", err
		}
		return "(" + l + " | " + r + ")", nil
	case xpath.Star:
		return "", fmt.Errorf("corpus: %q: Kleene star has no XPath 1.0 equivalent", xpath.String(e))
	case xpath.Filter:
		if qualUsesPos(e.Q) && !steplike(e.P) {
			return "", fmt.Errorf("corpus: positional qualifier on composite path %q: X_R numbers the whole per-context selection, XPath 1.0 the innermost step", xpath.String(e.P))
		}
		p, err := xp1(e.P, ctx)
		if err != nil {
			return "", err
		}
		q, err := qual1(e.Q)
		if err != nil {
			return "", err
		}
		return p + "[" + q + "]", nil
	}
	return "", fmt.Errorf("corpus: unknown expression %T", e)
}

// qual1 renders a qualifier as an XPath 1.0 predicate body. Paths
// inside qualifiers are relative to the filtered node, so they render
// against the context expression ".". Compound Boolean operands are
// parenthesized outright instead of tracking precedence.
func qual1(q xpath.Qual) (string, error) {
	switch q := q.(type) {
	case xpath.QTrue:
		return "true()", nil
	case xpath.QPath:
		return relPath(q.P)
	case xpath.QTextEq:
		p, err := relPath(q.P)
		if err != nil {
			return "", err
		}
		return p + " = " + xpath1Lit(q.Val), nil
	case xpath.QPos:
		return fmt.Sprintf("position() = %d", q.K), nil
	case xpath.QNot:
		inner, err := qual1(q.Q)
		if err != nil {
			return "", err
		}
		return "not(" + inner + ")", nil
	case xpath.QAnd:
		l, err := qual1(q.L)
		if err != nil {
			return "", err
		}
		r, err := qual1(q.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " and " + r + ")", nil
	case xpath.QOr:
		l, err := qual1(q.L)
		if err != nil {
			return "", err
		}
		r, err := qual1(q.R)
		if err != nil {
			return "", err
		}
		return "(" + l + " or " + r + ")", nil
	}
	return "", fmt.Errorf("corpus: unknown qualifier %T", q)
}

// relPath renders a path relative to the current context node,
// trimming the "./" prefix pure child paths pick up.
func relPath(e xpath.Expr) (string, error) {
	s, err := xp1(e, ".")
	if err != nil {
		return "", err
	}
	return strings.TrimPrefix(s, "./"), nil
}

// steplike reports whether e is a single location step (possibly
// filtered), the shape whose XPath predicate numbering matches X_R's.
func steplike(e xpath.Expr) bool {
	switch e := e.(type) {
	case xpath.Label, xpath.Text:
		return true
	case xpath.Filter:
		return steplike(e.P)
	}
	return false
}

// qualUsesPos reports whether the qualifier contains position() = k.
func qualUsesPos(q xpath.Qual) bool {
	switch q := q.(type) {
	case xpath.QPos:
		return true
	case xpath.QNot:
		return qualUsesPos(q.Q)
	case xpath.QAnd:
		return qualUsesPos(q.L) || qualUsesPos(q.R)
	case xpath.QOr:
		return qualUsesPos(q.L) || qualUsesPos(q.R)
	}
	return false
}

// xpath1Lit renders s as an XPath 1.0 string literal. XPath 1.0 has
// no escape sequences, so a value containing both quote kinds must be
// assembled with concat().
func xpath1Lit(s string) string {
	if !strings.Contains(s, "'") {
		return "'" + s + "'"
	}
	if !strings.Contains(s, `"`) {
		return `"` + s + `"`
	}
	parts := strings.Split(s, "'")
	pieces := make([]string, 0, 2*len(parts))
	for i, p := range parts {
		if i > 0 {
			pieces = append(pieces, `"'"`)
		}
		if p != "" {
			pieces = append(pieces, `'`+p+`'`)
		}
	}
	return "concat(" + strings.Join(pieces, ", ") + ")"
}
