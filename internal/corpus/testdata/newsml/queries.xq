newsitem/headline/text()
newsitem[body/para]/byline
newsitem/body/para[position() = 1]
newsitem/body/para/text()
newsitem[headline/text() = 'v5']/dateline
newsitem/dateline
