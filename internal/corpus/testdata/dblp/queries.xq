# Source-side X_R queries exercised through translation and the
# query-preservation check. One query per line; '#' starts a comment.
pub
pub/article/title/text()
pub/inproceedings/booktitle
pub/article[authors/author]/year
pub/article/authors/author[position() = 1]
pub/book/publisher/text()
pub[article]/article/journal
