regions/item/name/text()
regions/item[description/parlist]/quantity
regions/item/description/parlist/listitem[position() = 2]
people/person/emailaddress
open_auctions/open_auction/bidder/bid[position() = 1]/increase
open_auctions/open_auction[bidder/bid]/itemref
regions/item/description/text/text()
