country/name/text()
country[provinces/province]/capital
country/provinces/province[position() = 1]/name
country/provinces/province/cities/city/population
country/provinces/province/cities/city[name/text() = 'v3']
country[population/text() = 'v7']/name
