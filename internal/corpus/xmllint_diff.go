//go:build xmllint

// External differential harness: cross-validates this repository's
// generator, migrator and X_R evaluator against libxml2's xmllint on
// the shared XPath 1.0 fragment. Everything here hides behind the
// xmllint build tag so the core package keeps zero external-tool
// dependencies; run it with `make corpus-diff` (or
// `go test -tags xmllint ./internal/corpus -run Xmllint`).

package corpus

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// rowSep separates per-node rows inside a single concat() probe. It
// never occurs in corpus tag names or generated text values.
const rowSep = "~#~"

// lookupXmllint locates the xmllint binary: the XMLLINT environment
// variable wins, then $PATH.
func lookupXmllint() (string, error) {
	if p := os.Getenv("XMLLINT"); p != "" {
		if _, err := os.Stat(p); err != nil {
			return "", fmt.Errorf("corpus: $XMLLINT=%q: %w", p, err)
		}
		return p, nil
	}
	return exec.LookPath("xmllint")
}

// runXmllint executes xmllint and returns stdout, folding stderr into
// the error on failure.
func runXmllint(bin string, args ...string) (string, error) {
	cmd := exec.Command(bin, args...)
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("xmllint %s: %w\n%s", strings.Join(args, " "), err, errb.String())
	}
	return out.String(), nil
}

// dtdValidate validates the document file against the DTD file with
// xmllint --dtdvalid; a non-nil error means invalid (with libxml2's
// diagnostics attached).
func dtdValidate(bin, dtdPath, docPath string) error {
	_, err := runXmllint(bin, "--dtdvalid", dtdPath, "--noout", docPath)
	return err
}

// xmllintCount evaluates count(expr) over the document.
func xmllintCount(bin, docPath, expr string) (int, error) {
	out, err := runXmllint(bin, "--xpath", "count("+expr+")", docPath)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(out), 64)
	if err != nil {
		return 0, fmt.Errorf("corpus: count(%s) returned %q: %w", expr, out, err)
	}
	return int(f), nil
}

// xmllintRows returns one "name|normalized-string-value" row per node
// selected by expr, in document order. Rows are fetched in chunks via
// a single concat() probe per chunk, so the subprocess count stays
// proportional to the result size divided by the chunk width.
func xmllintRows(bin, docPath, expr string, count int) ([]string, error) {
	const chunk = 40
	rows := make([]string, 0, count)
	for lo := 1; lo <= count; lo += chunk {
		hi := lo + chunk - 1
		if hi > count {
			hi = count
		}
		var b strings.Builder
		b.WriteString("concat(")
		for i := lo; i <= hi; i++ {
			if i > lo {
				fmt.Fprintf(&b, ", %q, ", rowSep)
			}
			fmt.Fprintf(&b, "name((%s)[%d]), '|', normalize-space((%s)[%d])", expr, i, expr, i)
		}
		b.WriteString(")")
		out, err := runXmllint(bin, "--xpath", b.String(), docPath)
		if err != nil {
			return nil, err
		}
		rows = append(rows, strings.Split(strings.TrimRight(out, "\n"), rowSep)...)
	}
	return rows, nil
}

// evalRows runs the X_R evaluator and renders each selected node the
// same way the xmllint probe does: name (empty for text nodes) and
// whitespace-normalized string-value.
func evalRows(q xpath.Expr, root *xmltree.Node) []string {
	nodes := xpath.Eval(q, root)
	rows := make([]string, len(nodes))
	for i, n := range nodes {
		name := n.Label
		if n.IsText() {
			name = "" // XPath name() of a text node
		}
		rows[i] = name + "|" + normalizeSpace(stringValue(n))
	}
	return rows
}

// stringValue is the XPath string-value: a text node's text, or the
// concatenation of an element's descendant text in document order.
func stringValue(n *xmltree.Node) string {
	if n.IsText() {
		return n.Text
	}
	var b strings.Builder
	var walk func(*xmltree.Node)
	walk = func(m *xmltree.Node) {
		if m.IsText() {
			b.WriteString(m.Text)
			return
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// normalizeSpace is XPath normalize-space(): strip leading/trailing
// whitespace and collapse internal runs to single spaces.
func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// diffQuery cross-checks one query on one document file: our
// evaluator's answer set against xmllint's, compared as multisets of
// name|string-value rows (X_R uses first-reached order, XPath 1.0
// document order, so order is not comparable). It returns a
// description of the divergence, or "" when the engines agree.
func diffQuery(bin, docPath string, q xpath.Expr, root *xmltree.Node) (string, error) {
	expr, err := ToXPath1(q)
	if err != nil {
		// Outside the shared fragment — nothing to compare.
		return "", nil
	}
	ours := evalRows(q, root)
	n, err := xmllintCount(bin, docPath, expr)
	if err != nil {
		return "", err
	}
	if n != len(ours) {
		return fmt.Sprintf("query %s (%s): ours selects %d nodes, xmllint %d", xpath.String(q), expr, len(ours), n), nil
	}
	if n == 0 {
		return "", nil
	}
	theirs, err := xmllintRows(bin, docPath, expr, n)
	if err != nil {
		return "", err
	}
	sort.Strings(ours)
	sort.Strings(theirs)
	for i := range ours {
		if ours[i] != theirs[i] {
			return fmt.Sprintf("query %s (%s): sorted row %d differs: ours %q, xmllint %q", xpath.String(q), expr, i, ours[i], theirs[i]), nil
		}
	}
	return "", nil
}
