package corpus

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/anfa"
	"repro/internal/embedding"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/search"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrUnknownPair reports a RunConfig.Pairs entry naming no checked-in
// corpus pair — a caller input problem, not a pipeline failure.
var ErrUnknownPair = errors.New("no such corpus pair")

// RunConfig steers a corpus run. The zero value selects usable
// defaults covering every pair and heuristic.
type RunConfig struct {
	// Pairs restricts the run to the named pairs; empty means all.
	Pairs []string
	// Heuristics lists the search strategies compared; default
	// Random, QualityOrdered, IndepSet.
	Heuristics []search.Heuristic
	// Seed drives instance generation, random query generation and
	// the search's pseudo-random choices. Default 1.
	Seed int64
	// Docs is the number of instance documents migrated per found
	// embedding. Default 3.
	Docs int
	// DocNodes is the approximate node count per generated document.
	// Default 400.
	DocNodes int
	// RandomQueries supplements each pair's curated queries with this
	// many generated translatable X_R queries. Default 4.
	RandomQueries int
	// SearchTimeout bounds each individual heuristic search; zero
	// means no per-search deadline beyond ctx.
	SearchTimeout time.Duration
	// MaxRestarts bounds restarts per search. The corpus default (200)
	// is deliberately above the library default: realistic pairs are
	// where the Random baseline needs its restart budget.
	MaxRestarts int
	// LocalOptions bounds IndepSet's per-production sampling; corpus
	// default 64.
	LocalOptions int
	// SimThreshold is the lexical similarity floor for the att matrix
	// (see match.Lexical). Default 0 keeps every scored pair.
	SimThreshold float64
	// Obs selects the metrics registry instrumented stages record
	// into; nil means obs.Default().
	Obs *obs.Registry
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c RunConfig) withDefaults() RunConfig {
	if len(c.Heuristics) == 0 {
		c.Heuristics = []search.Heuristic{search.Random, search.QualityOrdered, search.IndepSet}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Docs == 0 {
		c.Docs = 3
	}
	if c.DocNodes == 0 {
		c.DocNodes = 400
	}
	if c.RandomQueries == 0 {
		c.RandomQueries = 4
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 200
	}
	if c.LocalOptions == 0 {
		c.LocalOptions = 64
	}
	return c
}

// Row is the outcome of one (pair, heuristic) pipeline run: the
// machine-readable unit of the heuristic shoot-out.
type Row struct {
	Pair      string `json:"pair"`
	Heuristic string `json:"heuristic"`

	// Search outcome.
	Found           bool    `json:"found"`
	Quality         float64 `json:"quality"`
	SearchMS        float64 `json:"search_ms"`
	Restarts        int     `json:"restarts"`
	Steps           int     `json:"steps"`
	PathsEnumerated int     `json:"paths_enumerated"`

	// Data-plane outcome (zero unless Found).
	Docs       int     `json:"docs"`
	DocNodes   int     `json:"doc_nodes"`
	MigrateOK  int     `json:"migrate_ok"`
	MigrateMS  float64 `json:"migrate_ms"`
	Queries    int     `json:"queries"`
	Translated int     `json:"translated"`

	// ANFA sizes across the translated queries (states plus
	// transitions, after optimization).
	ANFAStatesTotal int `json:"anfa_states_total"`
	ANFAStatesMax   int `json:"anfa_states_max"`
	// Optimizer effect: summed automaton sizes entering and leaving
	// the schema-aware ANFA optimizer.
	ANFAStatesBefore int `json:"anfa_states_before"`
	ANFAStatesAfter  int `json:"anfa_states_after"`

	// Violations: a non-zero count fails the run.
	MigrateFailures        int `json:"migrate_failures"`
	PreservationMismatches int `json:"preservation_mismatches"`
	// StreamMismatches counts documents whose streaming migration
	// (embedding.StreamApply) failed or produced output that is not
	// byte-identical to the tree path's serialization.
	StreamMismatches int `json:"stream_mismatches"`

	// Err records a search error (deadline, cancellation); empty
	// otherwise. A not-found outcome is not an error.
	Err string `json:"err,omitempty"`

	// Rejections breaks the search's dead ends down by constraint
	// class (the explainability ledger's aggregate): evidence for why
	// a heuristic failed or how hard it had to work to succeed.
	Rejections *search.Rejections `json:"rejections,omitempty"`
}

// PairResult groups the per-heuristic rows of one schema pair.
type PairResult struct {
	Pair        string `json:"pair"`
	SourceTypes int    `json:"source_types"`
	TargetTypes int    `json:"target_types"`
	Recursive   bool   `json:"recursive"`
	Rows        []Row  `json:"rows"`
}

// FoundBy lists the heuristics that found an embedding.
func (p *PairResult) FoundBy() []string {
	var out []string
	for _, r := range p.Rows {
		if r.Found {
			out = append(out, r.Heuristic)
		}
	}
	return out
}

// Report is the full corpus run outcome.
type Report struct {
	Seed     int64        `json:"seed"`
	Docs     int          `json:"docs"`
	DocNodes int          `json:"doc_nodes"`
	Pairs    []PairResult `json:"pairs"`
}

// Violations counts pipeline-correctness failures across the report:
// migration failures, non-conforming migrated documents,
// query-preservation mismatches and stream-vs-tree divergences. Zero
// is the healthy state.
func (r *Report) Violations() int {
	n := 0
	for _, p := range r.Pairs {
		for _, row := range p.Rows {
			n += row.MigrateFailures + row.PreservationMismatches + row.StreamMismatches
		}
	}
	return n
}

// Uncovered lists pairs for which no heuristic found an embedding.
func (r *Report) Uncovered() []string {
	var out []string
	for _, p := range r.Pairs {
		if len(p.FoundBy()) == 0 {
			out = append(out, p.Pair)
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders the report as an aligned text table, one row per
// (pair, heuristic).
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %-6s %8s %10s %9s %7s %6s %8s %6s %7s %7s\n",
		"pair", "heuristic", "found", "quality", "search_ms", "restarts", "docs", "ok", "queries", "anfa", "anfa_b", "anfa_a")
	for _, p := range r.Pairs {
		for _, row := range p.Rows {
			fmt.Fprintf(&b, "%-8s %-14s %-6v %8.2f %10.2f %9d %7d %6d %8d %6d %7d %7d\n",
				row.Pair, row.Heuristic, row.Found, row.Quality, row.SearchMS,
				row.Restarts, row.Docs, row.MigrateOK, row.Queries, row.ANFAStatesMax,
				row.ANFAStatesBefore, row.ANFAStatesAfter)
		}
	}
	return b.String()
}

// RejectionTable renders the per-heuristic rejection breakdown: for
// every (pair, heuristic) cell, how many candidate placements each
// constraint class killed during the search. Reading it across a pair
// shows *why* a heuristic failed (all its dead ends hit the same
// class) rather than just that it did — the evidence the heuristic
// shoot-out needs (ROADMAP item 4).
func (r *Report) RejectionTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %-6s %12s %10s %11s %12s %9s %6s\n",
		"pair", "heuristic", "found", "lambda_empty", "path_empty", "prefix_free", "local_select", "conflict", "total")
	for _, p := range r.Pairs {
		for _, row := range p.Rows {
			rej := row.Rejections
			if rej == nil {
				rej = &search.Rejections{}
			}
			fmt.Fprintf(&b, "%-8s %-14s %-6v %12d %10d %11d %12d %9d %6d\n",
				row.Pair, row.Heuristic, row.Found,
				rej.LambdaEmpty, rej.PathEmpty, rej.PrefixFree, rej.LocalSelect, rej.Conflict, rej.Total())
		}
	}
	return b.String()
}

// Run drives the full pipeline over the corpus: for every selected
// pair and heuristic it searches for an embedding (scored against a
// lexical similarity matrix over the real tag names), then — when one
// is found — migrates generated instance documents, validates them
// against the target schema, cross-checks the streaming engine's
// output against the tree path byte-for-byte, translates the pair's
// queries and checks query preservation (Q(T) = idM(Tr(Q)(σd(T))))
// on every document.
func Run(ctx context.Context, cfg RunConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	pairs, err := Pairs()
	if err != nil {
		return nil, err
	}
	if len(cfg.Pairs) > 0 {
		keep := map[string]bool{}
		for _, n := range cfg.Pairs {
			keep[n] = true
		}
		var sel []Pair
		for _, p := range pairs {
			if keep[p.Name] {
				sel = append(sel, p)
				delete(keep, p.Name)
			}
		}
		for n := range keep {
			return nil, fmt.Errorf("corpus: %w: %q", ErrUnknownPair, n)
		}
		pairs = sel
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rep := &Report{Seed: cfg.Seed, Docs: cfg.Docs, DocNodes: cfg.DocNodes}
	for _, p := range pairs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		pr := PairResult{
			Pair:        p.Name,
			SourceTypes: len(p.Source.Types),
			TargetTypes: len(p.Target.Types),
			Recursive:   p.Source.IsRecursive() || p.Target.IsRecursive(),
		}
		att := match.Lexical(p.Source, p.Target, cfg.SimThreshold)
		queries, queryTexts := pairQueries(p, cfg)
		docs, err := pairDocs(p, cfg)
		if err != nil {
			return rep, err
		}
		for _, h := range cfg.Heuristics {
			row := runPair(ctx, p, h, att, queries, docs, cfg)
			row.Queries = len(queryTexts)
			pr.Rows = append(pr.Rows, row)
			logf("%-8s %-14s found=%v quality=%.2f search=%.1fms ok=%d/%d mismatches=%d stream=%d",
				p.Name, h, row.Found, row.Quality, row.SearchMS, row.MigrateOK, row.Docs, row.PreservationMismatches, row.StreamMismatches)
		}
		rep.Pairs = append(rep.Pairs, pr)
	}
	return rep, ctx.Err()
}

// pairQueries returns the pair's curated queries extended with
// generated translatable ones.
func pairQueries(p Pair, cfg RunConfig) ([]xpath.Expr, []string) {
	queries := append([]xpath.Expr(nil), p.Queries...)
	texts := append([]string(nil), p.QueryTexts...)
	r := rand.New(rand.NewSource(cfg.Seed ^ int64(len(p.Name))<<7))
	for i := 0; i < cfg.RandomQueries; i++ {
		q := xpath.RandomQuery(r, p.Source, xpath.GenOptions{TranslatableOnly: true, MaxDepth: 3})
		queries = append(queries, q)
		texts = append(texts, xpath.String(q))
	}
	return queries, texts
}

// pairDocs generates the pair's instance documents.
func pairDocs(p Pair, cfg RunConfig) ([]*xmltree.Tree, error) {
	docs := make([]*xmltree.Tree, 0, cfg.Docs)
	for i := 0; i < cfg.Docs; i++ {
		doc, err := GenerateSized(p.Source, cfg.Seed+int64(i)*7919, cfg.DocNodes)
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", p.Name, err)
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// runPair executes one (pair, heuristic) cell: search, then the data
// plane when an embedding is found.
func runPair(ctx context.Context, p Pair, h search.Heuristic, att *embedding.SimMatrix,
	queries []xpath.Expr, docs []*xmltree.Tree, cfg RunConfig) Row {
	row := Row{Pair: p.Name, Heuristic: h.String()}
	sctx := ctx
	if cfg.SearchTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, cfg.SearchTimeout)
		defer cancel()
	}
	res, err := search.FindCtx(sctx, p.Source, p.Target, att, search.Options{
		Heuristic:    h,
		Seed:         cfg.Seed,
		MaxRestarts:  cfg.MaxRestarts,
		LocalOptions: cfg.LocalOptions,
		Obs:          cfg.Obs,
		Explain:      true,
	})
	if err != nil {
		// Deadline and cancellation leave partial stats in res; an
		// invalid schema would have failed Pairs() already.
		row.Err = err.Error()
	}
	if res != nil {
		row.Quality = res.Quality
		row.SearchMS = float64(res.Elapsed) / float64(time.Millisecond)
		row.Restarts = res.Restarts
		row.Steps = res.Steps
		row.PathsEnumerated = res.PathsEnumerated
		row.Found = res.Embedding != nil
		rej := res.Rejections
		row.Rejections = &rej
	}
	if !row.Found {
		return row
	}
	emb := res.Embedding

	// Every valid embedding compiles to a streaming program (reordering
	// productions take the buffered fallback), so a compile failure here
	// is itself a pipeline violation.
	prog, err := emb.CompileStream()
	if err != nil {
		row.Err = fmt.Sprintf("streaming compile: %v", err)
		row.StreamMismatches++
	}

	trl, err := translate.New(emb)
	if err != nil {
		row.Err = fmt.Sprintf("translator construction: %v", err)
		return row
	}
	autos := make(map[int]*anfaHandle, len(queries))
	for i, q := range queries {
		auto, err := trl.TranslateCtx(ctx, q)
		if err != nil {
			// Curated and generated queries are translatable by
			// construction; a failure here is a pipeline violation.
			row.PreservationMismatches++
			continue
		}
		row.Translated++
		size := auto.Size()
		row.ANFAStatesTotal += size
		if size > row.ANFAStatesMax {
			row.ANFAStatesMax = size
		}
		opt := trl.LastOptStats()
		row.ANFAStatesBefore += opt.SizeBefore
		row.ANFAStatesAfter += opt.SizeAfter
		autos[i] = &anfaHandle{q: q, auto: auto}
	}

	for _, doc := range docs {
		row.Docs++
		row.DocNodes += doc.Size()
		t0 := time.Now()
		mres, err := emb.ApplyCtx(ctx, doc)
		row.MigrateMS += float64(time.Since(t0)) / float64(time.Millisecond)
		if err != nil {
			row.MigrateFailures++
			continue
		}
		if err := mres.Tree.Validate(p.Target); err != nil {
			row.MigrateFailures++
			continue
		}
		row.MigrateOK++
		// Cross-check the streaming engine against the tree path on the
		// real-schema instance: same document, byte-identical output.
		if prog != nil {
			var out strings.Builder
			if _, serr := prog.Run(ctx, strings.NewReader(doc.String()), &out, embedding.StreamOptions{Obs: cfg.Obs}); serr != nil {
				row.StreamMismatches++
			} else if out.String() != mres.Tree.String() {
				row.StreamMismatches++
			}
		}
		for _, h := range autos {
			if !preserved(h.q, h.auto, doc, mres) {
				row.PreservationMismatches++
			}
		}
	}
	return row
}

type anfaHandle struct {
	q    xpath.Expr
	auto *anfa.Automaton
}

// preserved checks Q(T) = idM(Tr(Q)(σd(T))) for one document: the
// translated automaton — optimized and compiled, the data-plane
// production path — run on the migrated tree must select exactly the
// images of the direct answers and never a default-fill node.
func preserved(q xpath.Expr, auto *anfa.Automaton, doc *xmltree.Tree, mres *embedding.Result) bool {
	direct := map[xmltree.NodeID]bool{}
	for _, n := range xpath.Eval(q, doc.Root) {
		direct[n.ID] = true
	}
	mapped := map[xmltree.NodeID]bool{}
	for _, n := range auto.Program().Run(mres.Tree.Root) {
		srcID, ok := mres.IDM[n.ID]
		if !ok {
			return false
		}
		mapped[srcID] = true
	}
	if len(direct) != len(mapped) {
		return false
	}
	for id := range direct {
		if !mapped[id] {
			return false
		}
	}
	return true
}
