// Package reduction implements the 3SAT → Schema-Embedding reduction
// of Theorem 5.1: given a CNF formula φ with clauses C1..Cn over
// variables x1..xm, it builds nonrecursive, concatenation-only DTDs S1
// and S2 and a similarity matrix att such that φ is satisfiable iff
// there is a valid schema embedding from S1 to S2 w.r.t. att. The
// reduction exercises the NP-hardness machinery end-to-end and supplies
// adversarial inputs for the search heuristics.
//
// Deviation from the paper's construction: Theorem 5.1 uses the
// unrestricted att and argues from the counts of the Z/W signature
// leaves that λ(Ci) = Ci and that each Ys lands on Ts or Fs. As stated
// that counting is not airtight — with att(A, B) = 1 everywhere, the
// leaf types can cross-map (λ(W) = Z lets a Ys draw its W paths from
// clause Z pools), and two Ys can occupy the two branches of a single
// variable, both of which admit valid embeddings for unsatisfiable
// formulas. This implementation therefore (a) pins the signature types
// r, Ci, Z and W through att — the Schema-Embedding problem takes att
// as an input, and Theorem 5.2's own proof restricts candidate sets the
// same way — and (b) adds a second counter leaf U whose per-variable
// counts decrease as the W counts increase, so a Ys fits under Tj or Fj
// only when j = s. With these, both directions are provable:
//
//	sat ⇒ embedding: map Ys to Fs when μ(xs) is true (Ts otherwise) and
//	route each clause through a branch whose literal μ satisfies.
//	embedding ⇒ sat: λ(Ci) = Ci forces path(r, Ci) = Xj/Vj/Ci with Ci a
//	child of Vj, i.e. xj occurs in Ci with Vj's polarity; the prefix-free
//	condition keeps clauses off every branch holding a Ys, so setting
//	μ(xj) = true iff Yj sits on Fj satisfies every clause.
package reduction

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/embedding"
)

// Literal is a variable index (1-based) with polarity: +v for x_v, -v
// for ¬x_v.
type Literal int

// Clause is a disjunction of literals (typically three).
type Clause []Literal

// Formula is a CNF formula over variables 1..Vars.
type Formula struct {
	Vars    int
	Clauses []Clause
}

// Check validates literal ranges.
func (f Formula) Check() error {
	if f.Vars < 1 {
		return fmt.Errorf("reduction: formula needs at least one variable")
	}
	if len(f.Clauses) == 0 {
		return fmt.Errorf("reduction: formula needs at least one clause")
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("reduction: clause %d is empty", i+1)
		}
		for _, l := range c {
			v := int(l)
			if v < 0 {
				v = -v
			}
			if v == 0 || v > f.Vars {
				return fmt.Errorf("reduction: clause %d has out-of-range literal %d", i+1, l)
			}
		}
	}
	return nil
}

// Satisfiable decides the formula by brute force (the ground truth for
// reduction tests; formulas are small).
func (f Formula) Satisfiable() bool {
	n := f.Vars
	for mask := 0; mask < 1<<uint(n); mask++ {
		if f.eval(mask) {
			return true
		}
	}
	return false
}

func (f Formula) eval(mask int) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v := int(l)
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			val := mask&(1<<uint(v-1)) != 0
			if val != neg {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Schemas builds (S1, S2, att) per the (repaired) Theorem 5.1
// construction:
//
//	S1: r → C1,...,Cn, Y1,...,Ym     S2: r → X1,...,Xm
//	    Ci → Z^(n+i)                     Xi → Ti, Fi
//	    Ys → W^(2n+s), U^(2m-s)          Ti → {Cj : xi ∈ Cj}, W^(2n+i), U^(2m-i)
//	    Z, W, U → ε                      Fi → {Cj : ¬xi ∈ Cj}, W^(2n+i), U^(2m-i)
//	                                     Ci → Z^(n+i);  Z, W, U → ε
//
// att pins r, every Ci, Z, W and U to their namesakes and leaves the Ys
// fully ambiguous.
func Schemas(f Formula) (*dtd.DTD, *dtd.DTD, *embedding.SimMatrix, error) {
	if err := f.Check(); err != nil {
		return nil, nil, nil, err
	}
	n := len(f.Clauses)
	m := f.Vars

	clause := func(i int) string { return fmt.Sprintf("C%d", i) } // 1-based
	yType := func(s int) string { return fmt.Sprintf("Y%d", s) }

	// Source S1.
	var rootKids []string
	for i := 1; i <= n; i++ {
		rootKids = append(rootKids, clause(i))
	}
	for s := 1; s <= m; s++ {
		rootKids = append(rootKids, yType(s))
	}
	defs1 := []dtd.Def{dtd.D("r", dtd.Concat(rootKids...))}
	for i := 1; i <= n; i++ {
		defs1 = append(defs1, dtd.D(clause(i), dtd.Concat(repeat("Z", n+i)...)))
	}
	for s := 1; s <= m; s++ {
		kids := append(repeat("W", 2*n+s), repeat("U", 2*m-s)...)
		defs1 = append(defs1, dtd.D(yType(s), dtd.Concat(kids...)))
	}
	defs1 = append(defs1, dtd.D("Z", dtd.Empty()), dtd.D("W", dtd.Empty()), dtd.D("U", dtd.Empty()))
	s1, err := dtd.New("r", defs1...)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reduction: building S1: %w", err)
	}

	// Target S2.
	var xKids []string
	for i := 1; i <= m; i++ {
		xKids = append(xKids, fmt.Sprintf("X%d", i))
	}
	defs2 := []dtd.Def{dtd.D("r", dtd.Concat(xKids...))}
	for i := 1; i <= m; i++ {
		ti, fi := fmt.Sprintf("T%d", i), fmt.Sprintf("F%d", i)
		defs2 = append(defs2, dtd.D(fmt.Sprintf("X%d", i), dtd.Concat(ti, fi)))
		var tKids, fKids []string
		for j, c := range f.Clauses {
			for _, l := range c {
				if int(l) == i {
					tKids = append(tKids, clause(j+1))
				}
				if int(l) == -i {
					fKids = append(fKids, clause(j+1))
				}
			}
		}
		counters := append(repeat("W", 2*n+i), repeat("U", 2*m-i)...)
		defs2 = append(defs2, dtd.D(ti, dtd.Concat(append(dedupe(tKids), counters...)...)))
		defs2 = append(defs2, dtd.D(fi, dtd.Concat(append(dedupe(fKids), counters...)...)))
	}
	for i := 1; i <= n; i++ {
		defs2 = append(defs2, dtd.D(clause(i), dtd.Concat(repeat("Z", n+i)...)))
	}
	defs2 = append(defs2, dtd.D("Z", dtd.Empty()), dtd.D("W", dtd.Empty()), dtd.D("U", dtd.Empty()))
	s2, err := dtd.New("r", defs2...)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("reduction: building S2: %w", err)
	}

	// att: signature types pinned, Ys ambiguous over everything.
	att := embedding.NewSimMatrix()
	pin := map[string]bool{"r": true, "Z": true, "W": true, "U": true}
	for i := 1; i <= n; i++ {
		pin[clause(i)] = true
	}
	for _, a := range s1.Types {
		if pin[a] {
			att.Set(a, a, 1)
			continue
		}
		for _, b := range s2.Types {
			att.Set(a, b, 1)
		}
	}
	return s1, s2, att, nil
}

// repeat returns k copies of name.
func repeat(name string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = name
	}
	return out
}

// dedupe removes duplicate clause references (a literal occurring twice
// in a clause must not duplicate the child).
func dedupe(names []string) []string {
	seen := map[string]bool{}
	out := names[:0:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
