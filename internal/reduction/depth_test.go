package reduction_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/guard"
	"repro/internal/reduction"
	"repro/internal/search"
	"repro/internal/xmltree"
)

// TestEmbeddingExistsIffSatisfiable is Theorem 5.1 run end to end: for
// each formula, exact (complete) search over (S1, S2, att) finds a
// valid embedding exactly when the formula is satisfiable.
func TestEmbeddingExistsIffSatisfiable(t *testing.T) {
	tests := []struct {
		name string
		f    reduction.Formula
	}{
		{"single positive unit", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{1}}}},
		{"contradictory units", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{1}, {-1}}}},
		{"satisfiable 2-var", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, -2}, {-1, 2}}}},
		{"unsatisfiable 2-var", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 2}, {-1, 2}, {-2}}}},
		{"satisfiable with pure literal", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{2}, {2, -1}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s1, s2, att, err := reduction.Schemas(tc.f)
			if err != nil {
				t.Fatalf("Schemas: %v", err)
			}
			res, err := search.Find(s1, s2, att, search.Options{Heuristic: search.Exact})
			if err != nil {
				t.Fatalf("Find: %v", err)
			}
			want := tc.f.Satisfiable()
			got := res.Embedding != nil
			if got != want {
				t.Fatalf("embedding found = %v, satisfiable = %v", got, want)
			}
			if got {
				if err := res.Embedding.Validate(att); err != nil {
					t.Errorf("found embedding fails validation: %v", err)
				}
			}
		})
	}
}

// TestSchemasCounters checks the counter-leaf arithmetic that pins Ys
// to its own variable: per variable i, both branches carry W^(2n+i) and
// U^(2m-i), and clause pools grow as Z^(n+i).
func TestSchemasCounters(t *testing.T) {
	f := reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{1, -2, 3}, {-1, 2, -3}}}
	s1, s2, _, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	n, m := len(f.Clauses), f.Vars
	count := func(prod []string, leaf string) int {
		c := 0
		for _, k := range prod {
			if k == leaf {
				c++
			}
		}
		return c
	}
	for s := 1; s <= m; s++ {
		y := s1.Prods["Y"+string(rune('0'+s))].Children
		if got := count(y, "W"); got != 2*n+s {
			t.Errorf("Y%d W count = %d, want %d", s, got, 2*n+s)
		}
		if got := count(y, "U"); got != 2*m-s {
			t.Errorf("Y%d U count = %d, want %d", s, got, 2*m-s)
		}
		for _, branch := range []string{"T", "F"} {
			b := s2.Prods[branch+string(rune('0'+s))].Children
			if got := count(b, "W"); got != 2*n+s {
				t.Errorf("%s%d W count = %d, want %d", branch, s, got, 2*n+s)
			}
			if got := count(b, "U"); got != 2*m-s {
				t.Errorf("%s%d U count = %d, want %d", branch, s, got, 2*m-s)
			}
		}
	}
	for i := 1; i <= n; i++ {
		c := "C" + string(rune('0'+i))
		if got := count(s1.Prods[c].Children, "Z"); got != n+i {
			t.Errorf("S1 %s Z count = %d, want %d", c, got, n+i)
		}
		if got := count(s2.Prods[c].Children, "Z"); got != n+i {
			t.Errorf("S2 %s Z count = %d, want %d", c, got, n+i)
		}
	}
}

// TestSchemasDedupesRepeatedLiterals: a literal occurring twice in one
// clause must not duplicate the clause child under the branch.
func TestSchemasDedupesRepeatedLiterals(t *testing.T) {
	f := reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 1, -2}}}
	_, s2, _, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	c1 := 0
	for _, k := range s2.Prods["T1"].Children {
		if k == "C1" {
			c1++
		}
	}
	if c1 != 1 {
		t.Errorf("T1 lists C1 %d times, want once", c1)
	}
}

// TestFormulaCheckTable sweeps the validation error paths.
func TestFormulaCheckTable(t *testing.T) {
	tests := []struct {
		name    string
		f       reduction.Formula
		wantErr bool
	}{
		{"ok", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, -2}}}, false},
		{"no variables", reduction.Formula{Vars: 0, Clauses: []reduction.Clause{{1}}}, true},
		{"no clauses", reduction.Formula{Vars: 1}, true},
		{"empty clause", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{}}}, true},
		{"zero literal", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{0}}}, true},
		{"literal out of range", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{2}}}, true},
		{"negative literal out of range", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{-3}}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f.Check(); (err != nil) != tc.wantErr {
				t.Errorf("Check() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestReductionInstancesRespectGuardLimits: reduction schemas force
// quadratically many counter leaves per document, so bounded instance
// generation (PR 1's resource guards) must fail fast with a
// *guard.LimitError instead of materializing an oversized tree.
func TestReductionInstancesRespectGuardLimits(t *testing.T) {
	f := reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{1, 2, 3}, {-1, -2, -3}, {1, -2, 3}}}
	s1, _, _, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = xmltree.Generate(s1, rand.New(rand.NewSource(1)), xmltree.GenOptions{
		Limits: guard.Limits{MaxNodes: 10},
	})
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Limit != "nodes" {
		t.Errorf("Generate(MaxNodes: 10) = %v, want nodes LimitError", err)
	}
	// With default limits the same schema generates fine.
	doc, err := xmltree.Generate(s1, rand.New(rand.NewSource(1)), xmltree.GenOptions{})
	if err != nil {
		t.Fatalf("Generate with defaults: %v", err)
	}
	if err := doc.Validate(s1); err != nil {
		t.Errorf("generated instance does not conform: %v", err)
	}
}
