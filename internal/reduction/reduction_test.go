package reduction_test

import (
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/reduction"
)

func TestFormulaCheck(t *testing.T) {
	cases := []struct {
		name string
		f    reduction.Formula
		want string
	}{
		{"ok", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, -2}}}, ""},
		{"no vars", reduction.Formula{Vars: 0, Clauses: []reduction.Clause{{1}}}, "at least one variable"},
		{"no clauses", reduction.Formula{Vars: 1}, "at least one clause"},
		{"empty clause", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{}}}, "empty"},
		{"zero literal", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{0}}}, "out-of-range"},
		{"big literal", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{2}}}, "out-of-range"},
		{"negative ok", reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{-3, 1}}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.f.Check()
			if tc.want == "" {
				if err != nil {
					t.Errorf("Check() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Check() = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestSatisfiable(t *testing.T) {
	cases := []struct {
		name string
		f    reduction.Formula
		want bool
	}{
		{"trivial", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{1}}}, true},
		{"contradiction", reduction.Formula{Vars: 1, Clauses: []reduction.Clause{{1}, {-1}}}, false},
		{"xor-ish", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 2}, {-1, -2}}}, true},
		{"all-pairs", reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, 2}, {1, -2}, {-1, 2}, {-1, -2}}}, false},
		{"3sat sat", reduction.Formula{Vars: 3, Clauses: []reduction.Clause{{1, 2, 3}, {-1, -2, -3}}}, true},
	}
	for _, tc := range cases {
		if got := tc.f.Satisfiable(); got != tc.want {
			t.Errorf("%s: Satisfiable() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSchemasStructure(t *testing.T) {
	f := reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, -2, 1}, {-1, 2}}}
	s1, s2, att, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	n, m := 2, 2
	// S1: r, n clauses, m Y's, Z, W, U.
	if s1.Size() != 1+n+m+3 {
		t.Errorf("|E1| = %d, want %d", s1.Size(), 1+n+m+3)
	}
	// S2: r, m X/T/F triples, n clauses, Z, W, U.
	if s2.Size() != 1+3*m+n+3 {
		t.Errorf("|E2| = %d, want %d", s2.Size(), 1+3*m+n+3)
	}
	// Clause signature: Ci has n+i Z children in both schemas.
	for i := 1; i <= n; i++ {
		name := "C" + string(rune('0'+i))
		for _, d := range []*dtd.DTD{s1, s2} {
			if got := d.Prods[name].Occurrences("Z"); got != n+i {
				t.Errorf("%s has %d Z children, want %d", name, got, n+i)
			}
		}
	}
	// x1 occurs positively in C1 (twice, deduplicated) and negatively in C2.
	if got := s2.Prods["T1"].Occurrences("C1"); got != 1 {
		t.Errorf("T1 hosts C1 %d times, want 1 (duplicate literal deduplicated)", got)
	}
	if got := s2.Prods["F1"].Occurrences("C2"); got != 1 {
		t.Errorf("F1 should host C2")
	}
	if got := s2.Prods["T1"].Occurrences("C2"); got != 0 {
		t.Errorf("T1 must not host C2")
	}
	// W/U counters: Ys has 2n+s W's and 2m-s U's.
	if got := s1.Prods["Y1"].Occurrences("W"); got != 2*n+1 {
		t.Errorf("Y1 W count = %d", got)
	}
	if got := s1.Prods["Y2"].Occurrences("U"); got != 2*m-2 {
		t.Errorf("Y2 U count = %d", got)
	}
	// att pins the signature types and leaves Y's ambiguous.
	if att.Get("Z", "W") != 0 || att.Get("W", "Z") != 0 || att.Get("C1", "T1") != 0 {
		t.Error("signature types not pinned")
	}
	if att.Get("Y1", "T2") == 0 || att.Get("Y1", "F1") == 0 {
		t.Error("Y types should be ambiguous")
	}
	if att.Get("Z", "Z") != 1 || att.Get("W", "W") != 1 {
		t.Error("pinned pairs should score 1")
	}
}

func TestSchemasRejectBadFormula(t *testing.T) {
	if _, _, _, err := reduction.Schemas(reduction.Formula{Vars: 0}); err == nil {
		t.Error("bad formula accepted")
	}
}

// TestIntendedEmbeddingValidates constructs the paper's intended
// embedding from a satisfying assignment by hand and checks it against
// the independent validator — the constructive direction of the
// correctness proof, without going through search.
func TestIntendedEmbeddingValidates(t *testing.T) {
	// φ = (x1 ∨ ¬x2) ∧ (¬x1 ∨ x2), satisfied by μ = {x1: true, x2: true}.
	f := reduction.Formula{Vars: 2, Clauses: []reduction.Clause{{1, -2}, {-1, 2}}}
	s1, s2, att, err := reduction.Schemas(f)
	if err != nil {
		t.Fatal(err)
	}
	e := embedding.New(s1, s2)
	// λ: signatures to themselves; Ys to the branch of ¬μ(xs).
	for _, a := range []string{"r", "C1", "C2", "Z", "W", "U"} {
		e.MapType(a, a)
	}
	e.MapType("Y1", "F1") // μ(x1) = true
	e.MapType("Y2", "F2") // μ(x2) = true
	// Clause routes through branches μ makes true: C1 via x1 (T1), C2
	// via x2 (T2).
	e.SetPath(embedding.Ref("r", "C1"), "X1/T1/C1")
	e.SetPath(embedding.Ref("r", "C2"), "X2/T2/C2")
	e.SetPath(embedding.Ref("r", "Y1"), "X1/F1")
	e.SetPath(embedding.Ref("r", "Y2"), "X2/F2")
	n := len(f.Clauses)
	for i := 1; i <= n; i++ {
		name := "C" + string(rune('0'+i))
		for k := 1; k <= n+i; k++ {
			e.SetPath(embedding.EdgeRef{Parent: name, Child: "Z", Occ: k},
				zStep(k))
		}
	}
	for s := 1; s <= f.Vars; s++ {
		name := "Y" + string(rune('0'+s))
		for k := 1; k <= 2*n+s; k++ {
			e.SetPath(embedding.EdgeRef{Parent: name, Child: "W", Occ: k}, wStep("W", k))
		}
		for k := 1; k <= 2*f.Vars-s; k++ {
			e.SetPath(embedding.EdgeRef{Parent: name, Child: "U", Occ: k}, wStep("U", k))
		}
	}
	if err := e.Validate(att); err != nil {
		t.Fatalf("intended embedding rejected: %v", err)
	}
}

func zStep(k int) string { return wStep("Z", k) }
func wStep(l string, k int) string {
	return l + "[position() = " + itoa(k) + "]"
}

func itoa(k int) string {
	if k < 10 {
		return string(rune('0' + k))
	}
	return string(rune('0'+k/10)) + string(rune('0'+k%10))
}
