// Package partial implements the extension sketched in the paper's
// §7 (Conclusions): partial information preservation. Full information
// preservation is sometimes too strong — "one often wants to select
// part of the source data and require this part of data to be
// transformed to a target document without loss of information".
//
// The user selects the source element types worth keeping. Prune
// restricts the source schema to that selection (disjunctions keep an
// explicit ε alternative so that documents whose chosen disjunct was
// dropped still conform), Project applies the corresponding instance
// projection π, and Mapping composes π with a schema embedding of the
// pruned schema: σd ∘ π is type safe, and σd⁻¹ recovers exactly π(T) —
// the selected information survives the round trip while the rest is
// deliberately dropped.
package partial

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/xmltree"
)

// Selection is the set of source element types to preserve.
type Selection map[string]bool

// NewSelection builds a selection from type names.
func NewSelection(types ...string) Selection {
	s := make(Selection, len(types))
	for _, t := range types {
		s[t] = true
	}
	return s
}

// noneSuffix names the fresh ε disjunct added when a disjunction loses
// alternatives to pruning.
const noneSuffix = ".none"

// Prune restricts the schema to the selected types: dropped children
// disappear from concatenations, dropped disjuncts are replaced by a
// single fresh ε alternative, stars over dropped types become ε, and
// dropped types vanish. The root must be selected and every selected
// type must stay reachable through selected types.
func Prune(d *dtd.DTD, keep Selection) (*dtd.DTD, error) {
	if !keep[d.Root] {
		return nil, fmt.Errorf("partial: the root type %q must be selected", d.Root)
	}
	for t := range keep {
		if _, ok := d.Prods[t]; !ok {
			return nil, fmt.Errorf("partial: selected type %q is not in the schema", t)
		}
	}
	out := &dtd.DTD{Root: d.Root, Prods: map[string]dtd.Production{}}
	for _, a := range d.Types {
		if !keep[a] {
			continue
		}
		p := d.Prods[a]
		switch p.Kind {
		case dtd.KindStr, dtd.KindEmpty:
			out.Types = append(out.Types, a)
			out.Prods[a] = p
		case dtd.KindConcat:
			var kept []string
			for _, c := range p.Children {
				if keep[c] {
					kept = append(kept, c)
				}
			}
			out.Types = append(out.Types, a)
			if len(kept) == 0 {
				out.Prods[a] = dtd.Empty()
			} else {
				out.Prods[a] = dtd.Concat(kept...)
			}
		case dtd.KindDisj:
			var kept []string
			for _, c := range p.Children {
				if keep[c] {
					kept = append(kept, c)
				}
			}
			out.Types = append(out.Types, a)
			switch {
			case len(kept) == len(p.Children):
				out.Prods[a] = p
			case len(kept) == 0:
				out.Prods[a] = dtd.Empty()
			default:
				// Documents whose chosen disjunct was dropped must still
				// conform: keep an explicit ε alternative.
				none := freshNone(d, out, a)
				out.Types = append(out.Types, none)
				out.Prods[none] = dtd.Empty()
				out.Prods[a] = dtd.Disj(append(kept, none)...)
			}
		case dtd.KindStar:
			out.Types = append(out.Types, a)
			if keep[p.Children[0]] {
				out.Prods[a] = p
			} else {
				out.Prods[a] = dtd.Empty()
			}
		}
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("partial: pruned schema malformed: %w", err)
	}
	reach := out.Reachable()
	for t := range keep {
		if !reach[t] {
			return nil, fmt.Errorf("partial: selected type %q is unreachable after pruning (select its ancestors too)", t)
		}
	}
	return out, nil
}

func freshNone(orig, out *dtd.DTD, a string) string {
	name := a + noneSuffix
	for i := 2; ; i++ {
		_, inOrig := orig.Prods[name]
		_, inOut := out.Prods[name]
		if !inOrig && !inOut {
			return name
		}
		name = fmt.Sprintf("%s%s%d", a, noneSuffix, i)
	}
}

// Project computes π(T): the instance-level projection of a document of
// d onto the selection. The result conforms to Prune(d, keep).
func Project(t *xmltree.Tree, d *dtd.DTD, keep Selection) (*xmltree.Tree, error) {
	if err := t.Validate(d); err != nil {
		return nil, fmt.Errorf("partial: document does not conform to the source schema: %w", err)
	}
	pruned, err := Prune(d, keep)
	if err != nil {
		return nil, err
	}
	out := &xmltree.Tree{}
	out.Root = project(out, pruned, d, keep, t.Root)
	if err := out.Validate(pruned); err != nil {
		return nil, fmt.Errorf("partial: internal error: projection does not conform: %w", err)
	}
	return out, nil
}

func project(out *xmltree.Tree, pruned, d *dtd.DTD, keep Selection, n *xmltree.Node) *xmltree.Node {
	m := out.NewElement(n.Label)
	prod := d.Prods[n.Label]
	switch prod.Kind {
	case dtd.KindStr:
		if v, ok := n.Value(); ok {
			xmltree.Append(m, out.NewText(v))
		}
	case dtd.KindDisj:
		c := n.Children[0]
		if keep[c.Label] {
			xmltree.Append(m, project(out, pruned, d, keep, c))
			break
		}
		// The chosen disjunct was dropped; use the ε alternative if the
		// pruned production still is a disjunction.
		pp := pruned.Prods[n.Label]
		if pp.Kind == dtd.KindDisj {
			none := pp.Children[len(pp.Children)-1]
			xmltree.Append(m, out.NewElement(none))
		}
	default:
		for _, c := range n.Children {
			if !c.IsText() && keep[c.Label] {
				xmltree.Append(m, project(out, pruned, d, keep, c))
			}
		}
	}
	return m
}

// Mapping composes the projection with a schema embedding of the
// pruned source schema into the target: the paper's partial
// information preservation.
type Mapping struct {
	Source *dtd.DTD
	Keep   Selection
	Pruned *dtd.DTD
	// Sigma embeds Pruned into the target schema.
	Sigma *embedding.Embedding
}

// NewMapping prunes the source and pairs it with a user-supplied
// embedding of the pruned schema (found by search or written by hand).
func NewMapping(src *dtd.DTD, keep Selection, sigma *embedding.Embedding) (*Mapping, error) {
	pruned, err := Prune(src, keep)
	if err != nil {
		return nil, err
	}
	if !sigma.Source.Equal(pruned) {
		return nil, fmt.Errorf("partial: the embedding's source schema is not the pruned schema")
	}
	if err := sigma.Validate(nil); err != nil {
		return nil, err
	}
	return &Mapping{Source: src, Keep: keep, Pruned: pruned, Sigma: sigma}, nil
}

// Apply computes σd(π(T)): project, then map. The result conforms to
// the embedding's target schema.
func (m *Mapping) Apply(t *xmltree.Tree) (*embedding.Result, error) {
	projected, err := Project(t, m.Source, m.Keep)
	if err != nil {
		return nil, err
	}
	return m.Sigma.Apply(projected)
}

// Recover computes σd⁻¹ of a mapped document, returning π(T): the
// selected part of the original, exactly.
func (m *Mapping) Recover(tgt *xmltree.Tree) (*xmltree.Tree, error) {
	return m.Sigma.Invert(tgt)
}
