package partial_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/partial"
	"repro/internal/search"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// keepAllBut selects every type of d except the listed ones.
func keepAllBut(d *dtd.DTD, drop ...string) partial.Selection {
	s := partial.Selection{}
	for _, a := range d.Types {
		s[a] = true
	}
	for _, a := range drop {
		delete(s, a)
	}
	return s
}

func TestPruneConcat(t *testing.T) {
	d := workload.StudentDTD()
	// Drop names and the taking subtree.
	keep := keepAllBut(d, "name", "taking", "cno")
	pruned, err := partial.Prune(d, keep)
	if err != nil {
		t.Fatal(err)
	}
	p := pruned.Prods["student"]
	if p.Kind != dtd.KindConcat || len(p.Children) != 1 || p.Children[0] != "ssn" {
		t.Errorf("pruned student production = %v, want (ssn)", p)
	}
	if _, ok := pruned.Prods["taking"]; ok {
		t.Error("dropped type survived pruning")
	}
}

func TestPruneDisjunctionKeepsNone(t *testing.T) {
	d := workload.ClassDTD()
	keep := keepAllBut(d, "project")
	pruned, err := partial.Prune(d, keep)
	if err != nil {
		t.Fatal(err)
	}
	p := pruned.Prods["type"]
	if p.Kind != dtd.KindDisj || len(p.Children) != 2 {
		t.Fatalf("pruned type production = %v, want (regular | ε-alternative)", p)
	}
	none := p.Children[1]
	if pruned.Prods[none].Kind != dtd.KindEmpty {
		t.Errorf("ε alternative %q has production %v", none, pruned.Prods[none])
	}
}

func TestPruneStarOverDropped(t *testing.T) {
	d := workload.StudentDTD()
	keep := keepAllBut(d, "cno")
	pruned, err := partial.Prune(d, keep)
	if err != nil {
		t.Fatal(err)
	}
	if p := pruned.Prods["taking"]; p.Kind != dtd.KindEmpty {
		t.Errorf("taking production = %v, want EMPTY", p)
	}
}

func TestPruneErrors(t *testing.T) {
	d := workload.StudentDTD()
	if _, err := partial.Prune(d, partial.NewSelection("student")); err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("missing root: %v", err)
	}
	if _, err := partial.Prune(d, partial.NewSelection("db", "zebra")); err == nil || !strings.Contains(err.Error(), "not in the schema") {
		t.Errorf("unknown type: %v", err)
	}
	// cno is only reachable through taking; dropping taking orphans it.
	sel := keepAllBut(d, "taking")
	if _, err := partial.Prune(d, sel); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("orphaned selection: %v", err)
	}
}

func TestProjectBasic(t *testing.T) {
	d := workload.ClassDTD()
	doc, _ := xmltree.ParseString(`
<db>
  <class><cno>CS331</cno><title>DB</title><type><project>maze</project></type></class>
  <class><cno>CS210</cno><title>Algo</title><type><regular><prereq/></regular></type></class>
</db>`)
	keep := keepAllBut(d, "project")
	got, err := partial.Project(doc, d, keep)
	if err != nil {
		t.Fatal(err)
	}
	// The first class's project disjunct is replaced by the ε
	// alternative; everything else survives.
	cnos := xpath.Strings(xpath.Eval(xpath.MustParse("class/cno/text()"), got.Root))
	if len(cnos) != 2 || cnos[0] != "CS331" {
		t.Errorf("projected cnos = %v", cnos)
	}
	if n := xpath.Eval(xpath.MustParse("class/type/project"), got.Root); len(n) != 0 {
		t.Error("dropped disjunct survived projection")
	}
	if n := xpath.Eval(xpath.MustParse("class/type/regular"), got.Root); len(n) != 1 {
		t.Error("kept disjunct lost")
	}
}

// TestProjectConformsProperty: π(T) always conforms to the pruned
// schema, over random documents and random selections.
func TestProjectConformsProperty(t *testing.T) {
	d := workload.SchoolDTD()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		keep := partial.Selection{}
		for _, a := range d.Types {
			keep[a] = true
		}
		// Drop a few random leaf-ward types; retry selections that
		// orphan something.
		for i := 0; i < 3; i++ {
			keep[d.Types[1+r.Intn(d.Size()-1)]] = false
		}
		for a, k := range keep {
			if !k {
				delete(keep, a)
			}
		}
		pruned, err := partial.Prune(d, keep)
		if err != nil {
			return true // inadmissible selection; nothing to check
		}
		doc := xmltree.MustGenerate(d, r, xmltree.GenOptions{})
		projected, err := partial.Project(doc, d, keep)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := projected.Validate(pruned); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestPartialMappingRoundTrip: the composed mapping σd ∘ π is type safe
// and recovers exactly π(T) — the §7 notion of partial information
// preservation, end to end with a searched embedding.
func TestPartialMappingRoundTrip(t *testing.T) {
	src := workload.ClassDTD()
	tgt := workload.SchoolDTD()
	// Preserve the course skeleton; drop the prerequisite structure.
	keep := keepAllBut(src, "regular", "prereq")
	pruned, err := partial.Prune(src, keep)
	if err != nil {
		t.Fatal(err)
	}
	found, err := search.Find(pruned, tgt, nil, search.Options{Heuristic: search.Random, Seed: 5, MaxRestarts: 60})
	if err != nil {
		t.Fatal(err)
	}
	if found.Embedding == nil {
		t.Fatal("no embedding of the pruned schema found")
	}
	m, err := partial.NewMapping(src, keep, found.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		doc := xmltree.MustGenerate(src, r, xmltree.GenOptions{})
		res, err := m.Apply(doc)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if err := res.Tree.Validate(tgt); err != nil {
			t.Fatalf("type safety: %v", err)
		}
		back, err := m.Recover(res.Tree)
		if err != nil {
			t.Fatalf("Recover: %v", err)
		}
		want, err := partial.Project(doc, src, keep)
		if err != nil {
			t.Fatal(err)
		}
		if !xmltree.Equal(want, back) {
			t.Fatalf("partial round trip: %s", xmltree.Diff(want, back))
		}
	}
}

func TestNewMappingRejectsMismatchedEmbedding(t *testing.T) {
	src := workload.ClassDTD()
	keep := keepAllBut(src, "project")
	// σ1 embeds the full schema, not the pruned one.
	if _, err := partial.NewMapping(src, keep, workload.ClassEmbedding()); err == nil {
		t.Error("mismatched embedding accepted")
	}
}
