package partial_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/partial"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// choiceDTD is a small schema exercising every production kind,
// including a type name that collides with the ε-alternative naming
// scheme.
func choiceDTD(t *testing.T) *dtd.DTD {
	t.Helper()
	d, err := dtd.New("doc",
		dtd.D("doc", dtd.Concat("choice", "choice.none", "items", "note")),
		dtd.D("choice", dtd.Disj("yes", "no")),
		dtd.D("choice.none", dtd.Empty()),
		dtd.D("items", dtd.Star("item")),
		dtd.D("item", dtd.Str()),
		dtd.D("note", dtd.Str()),
		dtd.D("yes", dtd.Empty()),
		dtd.D("no", dtd.Empty()),
	)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPruneShapes is the table-driven sweep over every production
// shape a selection can leave behind.
func TestPruneShapes(t *testing.T) {
	d := choiceDTD(t)
	tests := []struct {
		name     string
		drop     []string
		typ      string
		wantKind dtd.Kind
		wantKids int
	}{
		{"disjunction fully kept stays verbatim", []string{"note"}, "choice", dtd.KindDisj, 2},
		{"disjunction partially dropped gains epsilon", []string{"no"}, "choice", dtd.KindDisj, 2},
		{"disjunction fully dropped becomes empty", []string{"yes", "no"}, "choice", dtd.KindEmpty, 0},
		{"concatenation fully dropped becomes empty", []string{"choice", "yes", "no", "choice.none", "items", "item", "note"}, "doc", dtd.KindEmpty, 0},
		{"star over kept child stays verbatim", []string{"note"}, "items", dtd.KindStar, 1},
		{"star over dropped child becomes empty", []string{"item"}, "items", dtd.KindEmpty, 0},
		{"str leaf survives verbatim", []string{"yes", "no"}, "note", dtd.KindStr, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pruned, err := partial.Prune(d, keepAllBut(d, tc.drop...))
			if err != nil {
				t.Fatalf("Prune: %v", err)
			}
			p := pruned.Prods[tc.typ]
			if p.Kind != tc.wantKind || len(p.Children) != tc.wantKids {
				t.Errorf("pruned %s production = %v, want kind %v with %d children", tc.typ, p, tc.wantKind, tc.wantKids)
			}
		})
	}
}

// TestFreshNoneAvoidsCollision: the ε-alternative name must dodge both
// schema types and names minted earlier in the same pruning.
func TestFreshNoneAvoidsCollision(t *testing.T) {
	d := choiceDTD(t)
	pruned, err := partial.Prune(d, keepAllBut(d, "no"))
	if err != nil {
		t.Fatal(err)
	}
	p := pruned.Prods["choice"]
	none := p.Children[len(p.Children)-1]
	if none == "choice.none" {
		t.Fatalf("ε alternative reused the existing type name %q", none)
	}
	if pruned.Prods[none].Kind != dtd.KindEmpty {
		t.Errorf("ε alternative %q has production %v, want EMPTY", none, pruned.Prods[none])
	}
	// The original "choice.none" type is untouched.
	if pruned.Prods["choice.none"].Kind != dtd.KindEmpty {
		t.Error("pre-existing choice.none type was disturbed")
	}
}

// TestProjectDroppedDisjunctToEmptiedProduction: when every disjunct
// was dropped the projected node simply loses its child.
func TestProjectDroppedDisjunctToEmptiedProduction(t *testing.T) {
	d := choiceDTD(t)
	doc, err := xmltree.ParseString(`<doc><choice><yes/></choice><choice.none/><items><item>a</item></items><note>n</note></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	keep := keepAllBut(d, "yes", "no")
	got, err := partial.Project(doc, d, keep)
	if err != nil {
		t.Fatal(err)
	}
	var choice *xmltree.Node
	got.Walk(func(n *xmltree.Node) {
		if n.Label == "choice" {
			choice = n
		}
	})
	if choice == nil || len(choice.Children) != 0 {
		t.Errorf("projected choice node = %v, want childless element", choice)
	}
}

func TestProjectRejectsNonConforming(t *testing.T) {
	d := choiceDTD(t)
	doc, err := xmltree.ParseString(`<doc><zebra/></doc>`)
	if err != nil {
		t.Fatal(err)
	}
	keep := keepAllBut(d)
	if _, err := partial.Project(doc, d, keep); err == nil || !strings.Contains(err.Error(), "conform") {
		t.Errorf("Project on a non-conforming document: %v", err)
	}
}

func TestMappingErrorPaths(t *testing.T) {
	src := workload.ClassDTD()
	keep := keepAllBut(src, "project")
	pruned, err := partial.Prune(src, keep)
	if err != nil {
		t.Fatal(err)
	}
	// An embedding shell with no λ or paths fails validation inside
	// NewMapping.
	empty := embedding.New(pruned, workload.SchoolDTD())
	if _, err := partial.NewMapping(src, keep, empty); err == nil {
		t.Error("NewMapping accepted an invalid embedding")
	}
	// A healthy mapping still rejects non-conforming input documents.
	e := workload.ClassEmbedding()
	pe, err := partial.NewMapping(src, keepAllBut(src), mustPrunedIdentity(t, src, e))
	if err != nil {
		t.Fatalf("NewMapping: %v", err)
	}
	bad, _ := xmltree.ParseString(`<db><zebra/></db>`)
	if _, err := pe.Apply(bad); err == nil {
		t.Error("Apply accepted a non-conforming document")
	}
	junk, _ := xmltree.ParseString(`<junk/>`)
	if _, err := pe.Recover(junk); err == nil {
		t.Error("Recover accepted a document outside σd's image")
	}
}

// mustPrunedIdentity reuses e when the full selection leaves the schema
// unchanged (Prune of everything is the identity), so the class corpus
// embedding doubles as an embedding of the pruned schema.
func mustPrunedIdentity(t *testing.T, src *dtd.DTD, e *embedding.Embedding) *embedding.Embedding {
	t.Helper()
	pruned, err := partial.Prune(src, keepAllBut(src))
	if err != nil {
		t.Fatal(err)
	}
	if !pruned.Equal(src) {
		t.Fatal("full selection changed the schema")
	}
	return e
}

// TestPartialPipelineGuardLimits: the resource bounds added in PR 1
// protect the partial-preservation pipeline's ingestion layer — hostile
// schema or document text fails fast with a *guard.LimitError before
// any pruning or projection runs, and instance generation against a
// pruned schema honors MaxNodes.
func TestPartialPipelineGuardLimits(t *testing.T) {
	schemaText := workload.ClassDTD().String()
	if _, err := dtd.ParseLimits(schemaText, "db", guard.Limits{MaxTypes: 2}); !isLimit(err, "types") {
		t.Errorf("ParseLimits(MaxTypes: 2) = %v, want types LimitError", err)
	}
	if _, err := dtd.ParseLimits(schemaText, "db", guard.Limits{MaxInputBytes: 10}); !isLimit(err, "input-bytes") {
		t.Errorf("ParseLimits(MaxInputBytes: 10) = %v, want input-bytes LimitError", err)
	}
	d := workload.ClassDTD()
	pruned, err := partial.Prune(d, keepAllBut(d, "project"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = xmltree.Generate(pruned, rand.New(rand.NewSource(1)), xmltree.GenOptions{
		StarMax: 50,
		Limits:  guard.Limits{MaxNodes: 3},
	})
	if !isLimit(err, "nodes") {
		t.Errorf("Generate(MaxNodes: 3) = %v, want nodes LimitError", err)
	}
}

func isLimit(err error, limit string) bool {
	var le *guard.LimitError
	return errors.As(err, &le) && le.Limit == limit
}
