// Package fuzzseed writes seed entries into the repository's checked-in
// Go fuzz corpora. It is the shared sink for every corpus emitter (the
// property oracle, the real-world schema corpus): seeds are encoded in
// the `go test fuzz v1` format and deduplicated against the files
// already present, so emitters converge on re-runs instead of piling
// up identical entries.
package fuzzseed

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// Dirs maps fuzz-target names to their seed-corpus directories
// relative to the repository root (Go's native fuzzing reads seed
// corpora from testdata/fuzz/<FuzzTarget> in the target's package).
var Dirs = map[string]string{
	"FuzzDTDParse":   "internal/dtd/testdata/fuzz/FuzzDTDParse",
	"FuzzXPathParse": "internal/xpath/testdata/fuzz/FuzzXPathParse",
	"FuzzXMLDecode":  "internal/xmltree/testdata/fuzz/FuzzXMLDecode",

	"FuzzStreamMigrate": "internal/embedding/testdata/fuzz/FuzzStreamMigrate",
	"FuzzAnfaOptimize":  "internal/anfa/testdata/fuzz/FuzzAnfaOptimize",
}

// Encode renders one string input in the go-fuzz v1 corpus file format.
func Encode(input string) string {
	return "go test fuzz v1\nstring(" + strconv.Quote(input) + ")\n"
}

// Write seeds the corpora under root: for each fuzz target in seeds,
// every input is encoded and written to the target's corpus directory
// as "<prefix>-NNN". An input whose encoded form already exists in the
// directory — under any file name — is skipped, and existing file
// names are never overwritten. It returns the number of files written.
func Write(root, prefix string, seeds map[string][]string) (int, error) {
	written := 0
	for target, inputs := range seeds {
		rel, ok := Dirs[target]
		if !ok {
			return written, fmt.Errorf("fuzzseed: unknown fuzz target %q", target)
		}
		dir := filepath.Join(root, rel)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return written, err
		}
		have := map[string]bool{} // encoded bodies already on disk
		names := map[string]bool{}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return written, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return written, err
			}
			have[string(b)] = true
			names[e.Name()] = true
		}
		idx := 0
		for _, input := range inputs {
			body := Encode(input)
			if have[body] {
				continue
			}
			var name string
			for {
				name = fmt.Sprintf("%s-%03d", prefix, idx)
				idx++
				if !names[name] {
					break
				}
			}
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				return written, err
			}
			have[body] = true
			names[name] = true
			written++
		}
	}
	return written, nil
}
