package fuzzseed

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteDedupes(t *testing.T) {
	root := t.TempDir()
	seeds := map[string][]string{
		"FuzzXPathParse": {"a/b", "a/b", "c/d"},
	}
	n, err := Write(root, "seed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("first write: got %d files, want 2 (in-batch duplicate dropped)", n)
	}
	// Re-running the same emitter must be a no-op.
	n, err = Write(root, "seed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second write: got %d files, want 0", n)
	}
	// A different prefix with the same content is still a duplicate.
	n, err = Write(root, "other", map[string][]string{"FuzzXPathParse": {"c/d", "e"}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("cross-prefix write: got %d files, want 1", n)
	}
	dir := filepath.Join(root, Dirs["FuzzXPathParse"])
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("corpus dir has %d files, want 3", len(entries))
	}
}

func TestWriteNeverOverwrites(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, Dirs["FuzzDTDParse"])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Pre-existing file occupying the first index, with unrelated content.
	if err := os.WriteFile(filepath.Join(dir, "seed-000"), []byte(Encode("old")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(root, "seed", map[string][]string{"FuzzDTDParse": {"new"}}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "seed-000"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != Encode("old") {
		t.Fatalf("seed-000 was overwritten")
	}
	b, err = os.ReadFile(filepath.Join(dir, "seed-001"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != Encode("new") {
		t.Fatalf("new seed landed wrong: %q", b)
	}
}

func TestWriteUnknownTarget(t *testing.T) {
	if _, err := Write(t.TempDir(), "x", map[string][]string{"FuzzNope": {"a"}}); err == nil || !strings.Contains(err.Error(), "unknown fuzz target") {
		t.Fatalf("want unknown-target error, got %v", err)
	}
}

func TestEncode(t *testing.T) {
	got := Encode("a\"b")
	want := "go test fuzz v1\nstring(\"a\\\"b\")\n"
	if got != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
}
