package sdtd_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/sdtd"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

// TestMergeOverlappingSources: the Figure 1 class and student DTDs
// share the types db and cno with different content models; the
// specialized merge keeps both definitions apart while documents keep
// their tags.
func TestMergeOverlappingSources(t *testing.T) {
	classes := sdtd.FromDTD(workload.ClassDTD())
	students := sdtd.FromDTD(workload.StudentDTD())
	merged, err := sdtd.Merge("all", classes, students)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Both cno specializations exist, sharing the tag.
	if merged.TagOf("s1.cno") != "cno" || merged.TagOf("s2.cno") != "cno" {
		t.Errorf("cno specializations mis-tagged: %q, %q", merged.TagOf("s1.cno"), merged.TagOf("s2.cno"))
	}
	// The two db specializations differ in production.
	p1 := merged.DTD.Prods["s1.db"]
	p2 := merged.DTD.Prods["s2.db"]
	if p1.Children[0] == p2.Children[0] {
		t.Error("db specializations should reference different children")
	}

	classDoc, _ := xmltree.ParseString(`
<db><class><cno>CS1</cno><title>T</title><type><project>p</project></type></class></db>`)
	studentDoc, _ := xmltree.ParseString(`
<db><student><ssn>1</ssn><name>A</name><taking><cno>CS1</cno></taking></student></db>`)
	doc := sdtd.WrapInstances("all", classDoc, studentDoc)
	assign, err := merged.Typing(doc)
	if err != nil {
		t.Fatalf("Typing: %v", err)
	}
	// The two db elements carry the same tag but different types.
	dbs := doc.Root.Children
	if assign[dbs[0]] != "s1.db" || assign[dbs[1]] != "s2.db" {
		t.Errorf("db typings = %q, %q", assign[dbs[0]], assign[dbs[1]])
	}
	// The cno under taking types as the student specialization.
	taking := dbs[1].Children[0].Children[2]
	if got := assign[taking.Children[0]]; got != "s2.cno" {
		t.Errorf("taking/cno typed %q, want s2.cno", got)
	}
}

// TestTypingRejects: swapped documents fail typing.
func TestTypingRejects(t *testing.T) {
	classes := sdtd.FromDTD(workload.ClassDTD())
	students := sdtd.FromDTD(workload.StudentDTD())
	merged, err := sdtd.Merge("all", classes, students)
	if err != nil {
		t.Fatal(err)
	}
	// Order matters: the merged root concatenates class-db then
	// student-db.
	studentDoc, _ := xmltree.ParseString(`<db><student><ssn>1</ssn><name>A</name><taking/></student></db>`)
	doc := sdtd.WrapInstances("all", studentDoc, studentDoc)
	if err := merged.Validate(doc); err == nil {
		t.Error("student document accepted in the class slot")
	}
	// A malformed inner document fails too.
	bad, _ := xmltree.ParseString(`<db><zebra/></db>`)
	classDoc, _ := xmltree.ParseString(`<db/>`)
	doc2 := sdtd.WrapInstances("all", classDoc, bad)
	if err := merged.Validate(doc2); err == nil {
		t.Error("malformed inner document accepted")
	}
}

// TestTypingAmbiguousTags: two specializations of one tag under a star,
// distinguished only by content — the tree-automaton run must pick the
// right one per node.
func TestTypingAmbiguousTags(t *testing.T) {
	d := dtd.MustNew("r",
		dtd.D("r", dtd.Star("entryDisj")),
		dtd.D("entryDisj", dtd.Disj("entryA", "entryB")),
		dtd.D("entryA", dtd.Concat("x")),
		dtd.D("entryB", dtd.Concat("y")),
		dtd.D("x", dtd.Str()),
		dtd.D("y", dtd.Str()),
	)
	s := sdtd.FromDTD(d)
	// entryA and entryB both carry the tag "entry"; the wrapper
	// disjunction carries "item".
	s.Tag["entryA"] = "entry"
	s.Tag["entryB"] = "entry"
	s.Tag["entryDisj"] = "item"
	doc, _ := xmltree.ParseString(`<r><item><entry><x>1</x></entry></item><item><entry><y>2</y></entry></item></r>`)
	assign, err := s.Typing(doc)
	if err != nil {
		t.Fatalf("Typing: %v", err)
	}
	first := doc.Root.Children[0].Children[0]
	second := doc.Root.Children[1].Children[0]
	if assign[first] != "entryA" || assign[second] != "entryB" {
		t.Errorf("typings = %q, %q; want entryA, entryB", assign[first], assign[second])
	}
	// A child that fits neither specialization is rejected.
	bad, _ := xmltree.ParseString(`<r><item><entry><z>1</z></entry></item></r>`)
	if err := s.Validate(bad); err == nil || !strings.Contains(err.Error(), "no type") {
		t.Errorf("Validate(bad) = %v", err)
	}
}

// TestMergeErrors covers the failure modes.
func TestMergeErrors(t *testing.T) {
	if _, err := sdtd.Merge("all"); err == nil {
		t.Error("empty merge accepted")
	}
	d := sdtd.FromDTD(workload.StudentDTD())
	if _, err := sdtd.Merge("db", d); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Errorf("root/tag collision: %v", err)
	}
}

// TestTypingMatchesPlainValidation: for an identity-tagged schema,
// specialized typing accepts exactly what plain validation accepts
// (random documents of corpus schemas).
func TestTypingMatchesPlainValidation(t *testing.T) {
	for _, named := range workload.Corpus() {
		s := sdtd.FromDTD(named.DTD)
		prop := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			doc := xmltree.MustGenerate(named.DTD, r, xmltree.GenOptions{})
			if err := s.Validate(doc); err != nil {
				t.Logf("%s seed %d: %v", named.Name, seed, err)
				return false
			}
			assign, err := s.Typing(doc)
			if err != nil {
				return false
			}
			// Identity tagging: every node types as its own label.
			ok := true
			doc.Walk(func(n *xmltree.Node) {
				if !n.IsText() && assign[n] != n.Label {
					ok = false
				}
			})
			return ok
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}); err != nil {
			t.Errorf("%s: %v", named.Name, err)
		}
	}
}
