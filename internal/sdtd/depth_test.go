package sdtd_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/guard"
	"repro/internal/sdtd"
	"repro/internal/workload"
	"repro/internal/xmltree"
)

func TestCheckErrors(t *testing.T) {
	if err := (&sdtd.SpecializedDTD{}).Check(); err == nil || !strings.Contains(err.Error(), "nil schema") {
		t.Errorf("nil schema: %v", err)
	}
	bad := &sdtd.SpecializedDTD{DTD: &dtd.DTD{
		Root:  "r",
		Types: []string{"r"},
		Prods: map[string]dtd.Production{"r": dtd.Concat("ghost")},
	}}
	if err := bad.Check(); err == nil {
		t.Error("schema with an undefined child passed Check")
	}
}

func TestMergeRejectsInvalidSource(t *testing.T) {
	ok := sdtd.FromDTD(workload.StudentDTD())
	bad := &sdtd.SpecializedDTD{DTD: &dtd.DTD{
		Root:  "r",
		Types: []string{"r"},
		Prods: map[string]dtd.Production{"r": dtd.Concat("ghost")},
	}}
	if _, err := sdtd.Merge("all", ok, bad); err == nil || !strings.Contains(err.Error(), "source 2") {
		t.Errorf("invalid second source: %v", err)
	}
}

// TestTypingRejectsTable sweeps the shapes the bottom-up automaton must
// refuse, one production kind at a time.
func TestTypingRejectsTable(t *testing.T) {
	d := dtd.MustNew("r",
		dtd.D("r", dtd.Concat("pair", "many", "leaf", "pick")),
		dtd.D("pair", dtd.Concat("leaf2", "leaf2")),
		dtd.D("many", dtd.Star("leaf2")),
		dtd.D("leaf", dtd.Str()),
		dtd.D("leaf2", dtd.Empty()),
		dtd.D("pick", dtd.Disj("leaf2", "leaf")),
	)
	s := sdtd.FromDTD(d)
	good := `<r><pair><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2/></pick></r>`
	if err := s.Validate(mustParse(t, good)); err != nil {
		t.Fatalf("baseline document rejected: %v", err)
	}
	tests := []struct {
		name string
		doc  string
	}{
		{"concat arity too small", `<r><pair><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2/></pick></r>`},
		{"concat arity too large", `<r><pair><leaf2/><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2/></pick></r>`},
		{"star over foreign child", `<r><pair><leaf2/><leaf2/></pair><many><leaf>x</leaf></many><leaf>x</leaf><pick><leaf2/></pick></r>`},
		{"str without text", `<r><pair><leaf2/><leaf2/></pair><many/><leaf/><pick><leaf2/></pick></r>`},
		{"empty type with text child", `<r><pair><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2>t</leaf2></pick></r>`},
		{"disjunction with two children", `<r><pair><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2/><leaf2/></pick></r>`},
		{"disjunction over foreign child", `<r><pair><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><zebra/></pick></r>`},
		{"wrong root tag", `<z><pair><leaf2/><leaf2/></pair><many/><leaf>x</leaf><pick><leaf2/></pick></z>`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := s.Validate(mustParse(t, tc.doc)); err == nil {
				t.Error("malformed document accepted")
			}
		})
	}
}

func TestTypingEmptyDocuments(t *testing.T) {
	s := sdtd.FromDTD(workload.StudentDTD())
	if _, err := s.Typing(nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := s.Typing(&xmltree.Tree{}); err == nil {
		t.Error("tree with nil root accepted")
	}
}

// TestMergeThreeSources: a three-way merge types each wrapped instance
// with its own source's specializations, even though all three share
// every tag.
func TestMergeThreeSources(t *testing.T) {
	mk := func(kind dtd.Production) *sdtd.SpecializedDTD {
		return sdtd.FromDTD(dtd.MustNew("db",
			dtd.D("db", kind),
			dtd.D("x", dtd.Str()),
		))
	}
	one := mk(dtd.Concat("x"))
	two := mk(dtd.Star("x"))
	three := mk(dtd.Empty())
	merged, err := sdtd.Merge("all", one, two, three)
	if err != nil {
		t.Fatal(err)
	}
	doc := sdtd.WrapInstances("all",
		mustParse(t, `<db><x>1</x></db>`),
		mustParse(t, `<db><x>1</x><x>2</x><x>3</x></db>`),
		mustParse(t, `<db/>`),
	)
	assign, err := merged.Typing(doc)
	if err != nil {
		t.Fatalf("Typing: %v", err)
	}
	for i, c := range doc.Root.Children {
		want := []string{"s1.db", "s2.db", "s3.db"}[i]
		if assign[c] != want {
			t.Errorf("child %d typed %q, want %q", i, assign[c], want)
		}
	}
	// Swapping the concat instance into the star slot still types (a
	// one-element star), but the empty slot cannot hold children.
	bad := sdtd.WrapInstances("all",
		mustParse(t, `<db><x>1</x></db>`),
		mustParse(t, `<db><x>1</x></db>`),
		mustParse(t, `<db><x>1</x></db>`),
	)
	if err := merged.Validate(bad); err == nil {
		t.Error("non-empty instance accepted in the EMPTY source slot")
	}
}

// TestTypingOnLimitedParse: documents reach the typing automaton only
// through the PR 1 resource-guarded decoder, so hostile nesting fails
// at parse time with a *guard.LimitError rather than exhausting the
// typing recursion.
func TestTypingOnLimitedParse(t *testing.T) {
	depth := guard.DefaultMaxDepth + 10
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	_, err := xmltree.ParseString(b.String())
	var le *guard.LimitError
	if !errors.As(err, &le) || le.Limit != "depth" {
		t.Fatalf("ParseString on %d-deep document = %v, want depth LimitError", depth, err)
	}
}

func mustParse(t *testing.T, s string) *xmltree.Tree {
	t.Helper()
	tr, err := xmltree.ParseString(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return tr
}
