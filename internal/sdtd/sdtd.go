// Package sdtd implements specialized DTDs (Papakonstantinou & Vianu),
// the schema formalism §4.5 invokes for merging source schemas whose
// element type sets overlap: element *types* are distinct from the
// *tags* documents carry, so two sources may both define a "cno" tag
// with different content models — each becomes its own type carrying
// the shared tag.
//
// The package provides the merge construction of §4.5 for the general
// (non-disjoint) case, and validation/typing of documents against a
// specialized DTD via a bottom-up tree-automaton run: a document
// conforms when some assignment of types to its nodes respects the
// productions, and Typing materializes one such assignment. Extending
// schema embeddings themselves to specialized DTDs is the future work
// the paper defers ("it is natural and not very difficult"); here the
// substrate covers the part §4.5 actually uses — building the single
// source S' out of overlapping sources.
package sdtd

import (
	"fmt"

	"repro/internal/dtd"
	"repro/internal/xmltree"
)

// SpecializedDTD pairs a normal-form schema over element types with a
// tag function from types to the surface labels documents carry.
// Several types may share one tag (the specializations of that tag).
type SpecializedDTD struct {
	// DTD holds the productions over type names.
	DTD *dtd.DTD
	// Tag maps each type to its surface label; unlisted types carry
	// their own name.
	Tag map[string]string
}

// FromDTD wraps a plain DTD as a specialized one with the identity tag
// function.
func FromDTD(d *dtd.DTD) *SpecializedDTD {
	return &SpecializedDTD{DTD: d, Tag: map[string]string{}}
}

// TagOf returns the surface label of a type.
func (s *SpecializedDTD) TagOf(typ string) string {
	if t, ok := s.Tag[typ]; ok {
		return t
	}
	return typ
}

// Check validates the underlying schema.
func (s *SpecializedDTD) Check() error {
	if s.DTD == nil {
		return fmt.Errorf("sdtd: nil schema")
	}
	return s.DTD.Check()
}

// Merge builds the single source S' of §4.5 from sources whose type
// sets may overlap: a fresh root (rootName must not collide with any
// tag) concatenates the source roots, and every source type becomes a
// distinct specialization "s<i>.<type>" carrying its original tag.
func Merge(rootName string, sources ...*SpecializedDTD) (*SpecializedDTD, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("sdtd: Merge needs at least one source")
	}
	out := &SpecializedDTD{
		DTD: &dtd.DTD{Root: rootName, Prods: map[string]dtd.Production{}},
		Tag: map[string]string{},
	}
	rename := func(i int, typ string) string { return fmt.Sprintf("s%d.%s", i+1, typ) }
	var rootKids []string
	for i, src := range sources {
		if err := src.Check(); err != nil {
			return nil, fmt.Errorf("sdtd: source %d: %w", i+1, err)
		}
		for _, a := range src.DTD.Types {
			fresh := rename(i, a)
			p := src.DTD.Prods[a]
			kids := make([]string, len(p.Children))
			for j, c := range p.Children {
				kids[j] = rename(i, c)
			}
			out.DTD.Types = append(out.DTD.Types, fresh)
			out.DTD.Prods[fresh] = dtd.Production{Kind: p.Kind, Children: kids}
			out.Tag[fresh] = src.TagOf(a)
			if out.Tag[fresh] == rootName {
				return nil, fmt.Errorf("sdtd: merged root name %q collides with a source tag", rootName)
			}
		}
		rootKids = append(rootKids, rename(i, src.DTD.Root))
	}
	out.DTD.Types = append([]string{rootName}, out.DTD.Types...)
	out.DTD.Prods[rootName] = dtd.Concat(rootKids...)
	if err := out.DTD.Check(); err != nil {
		return nil, fmt.Errorf("sdtd: merged schema malformed: %w", err)
	}
	return out, nil
}

// Validate reports whether the document admits a typing under the
// specialized schema (a nondeterministic bottom-up tree-automaton run).
func (s *SpecializedDTD) Validate(t *xmltree.Tree) error {
	_, err := s.Typing(t)
	return err
}

// Typing computes one type assignment for every element node of the
// document, or an error when none exists. The root must type as the
// root type.
func (s *SpecializedDTD) Typing(t *xmltree.Tree) (map[*xmltree.Node]string, error) {
	if t == nil || t.Root == nil {
		return nil, fmt.Errorf("sdtd: empty document")
	}
	// Index types by tag.
	byTag := map[string][]string{}
	for _, typ := range s.DTD.Types {
		tag := s.TagOf(typ)
		byTag[tag] = append(byTag[tag], typ)
	}
	// Bottom-up: possible[n] = set of types n can take.
	possible := map[*xmltree.Node]map[string]bool{}
	var up func(n *xmltree.Node) error
	up = func(n *xmltree.Node) error {
		for _, c := range n.Children {
			if c.IsText() {
				continue
			}
			if err := up(c); err != nil {
				return err
			}
		}
		set := map[string]bool{}
		for _, typ := range byTag[n.Label] {
			if s.fits(n, typ, possible) {
				set[typ] = true
			}
		}
		if len(set) == 0 {
			return fmt.Errorf("sdtd: no type for %q node (tag has %d specializations)", n.Label, len(byTag[n.Label]))
		}
		possible[n] = set
		return nil
	}
	if err := up(t.Root); err != nil {
		return nil, err
	}
	if !possible[t.Root][s.DTD.Root] {
		return nil, fmt.Errorf("sdtd: root %q cannot take the root type %q", t.Root.Label, s.DTD.Root)
	}
	// Top-down: materialize one assignment.
	assign := map[*xmltree.Node]string{t.Root: s.DTD.Root}
	var down func(n *xmltree.Node) error
	down = func(n *xmltree.Node) error {
		typ := assign[n]
		p := s.DTD.Prods[typ]
		switch p.Kind {
		case dtd.KindStr, dtd.KindEmpty:
			return nil
		case dtd.KindConcat:
			for i, c := range n.Children {
				assign[c] = p.Children[i]
				if err := down(c); err != nil {
					return err
				}
			}
		case dtd.KindDisj:
			c := n.Children[0]
			for _, b := range p.Children {
				if possible[c][b] {
					assign[c] = b
					return down(c)
				}
			}
			return fmt.Errorf("sdtd: internal: no disjunct types %q child", typ)
		case dtd.KindStar:
			for _, c := range n.Children {
				assign[c] = p.Children[0]
				if err := down(c); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := down(t.Root); err != nil {
		return nil, err
	}
	return assign, nil
}

// fits reports whether node n can take type typ given the children's
// possible types.
func (s *SpecializedDTD) fits(n *xmltree.Node, typ string, possible map[*xmltree.Node]map[string]bool) bool {
	p, ok := s.DTD.Prods[typ]
	if !ok {
		return false
	}
	switch p.Kind {
	case dtd.KindStr:
		return len(n.Children) == 1 && n.Children[0].IsText()
	case dtd.KindEmpty:
		return len(n.Children) == 0
	case dtd.KindConcat:
		if len(n.Children) != len(p.Children) {
			return false
		}
		for i, c := range n.Children {
			if c.IsText() || !possible[c][p.Children[i]] {
				return false
			}
		}
		return true
	case dtd.KindDisj:
		if len(n.Children) != 1 || n.Children[0].IsText() {
			return false
		}
		for _, b := range p.Children {
			if possible[n.Children[0]][b] {
				return true
			}
		}
		return false
	case dtd.KindStar:
		for _, c := range n.Children {
			if c.IsText() || !possible[c][p.Children[0]] {
				return false
			}
		}
		return true
	}
	return false
}

// WrapInstances builds an instance of a merged schema from one document
// per source: a fresh root element tagged with the merged root name
// whose children are the source documents' roots (copied).
func WrapInstances(rootName string, docs ...*xmltree.Tree) *xmltree.Tree {
	out := &xmltree.Tree{}
	root := out.NewElement(rootName)
	out.Root = root
	for _, d := range docs {
		xmltree.Append(root, copyInto(out, d.Root))
	}
	return out
}

func copyInto(out *xmltree.Tree, n *xmltree.Node) *xmltree.Node {
	if n.IsText() {
		return out.NewText(n.Text)
	}
	m := out.NewElement(n.Label)
	for _, c := range n.Children {
		xmltree.Append(m, copyInto(out, c))
	}
	return m
}
