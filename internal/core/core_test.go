package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/xmltree"
)

const classDTDText = `
<!ELEMENT db (class)*>
<!ELEMENT class (cno, title, type)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT type (regular | project)>
<!ELEMENT regular (prereq)>
<!ELEMENT project (#PCDATA)>
<!ELEMENT prereq (class)*>
`

const schoolDTDText = `
<!ELEMENT school (courses, students)>
<!ELEMENT courses (current, history)>
<!ELEMENT current (course)*>
<!ELEMENT history (course)*>
<!ELEMENT course (basic, category)>
<!ELEMENT basic (cno, credit, class)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT credit (#PCDATA)>
<!ELEMENT class (semester)*>
<!ELEMENT semester (title, year, term, instructor)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT term (#PCDATA)>
<!ELEMENT instructor (#PCDATA)>
<!ELEMENT category (mandatory | advanced)>
<!ELEMENT mandatory (regular | lab)>
<!ELEMENT lab (#PCDATA)>
<!ELEMENT advanced (project | thesis)>
<!ELEMENT thesis (#PCDATA)>
<!ELEMENT project (#PCDATA)>
<!ELEMENT regular (required)>
<!ELEMENT required (prereq)>
<!ELEMENT prereq (course)*>
<!ELEMENT students (student)*>
<!ELEMENT student (ssn, name, gpa, taking)>
<!ELEMENT ssn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT gpa (#PCDATA)>
<!ELEMENT taking (cno)*>
`

// TestEndToEndPipeline drives the whole public API exactly as the
// package comment advertises: parse schemas, build att, search for an
// embedding, map an instance, invert it, and answer a translated query.
func TestEndToEndPipeline(t *testing.T) {
	src, err := core.ParseDTD(classDTDText, "db")
	if err != nil {
		t.Fatalf("ParseDTD(source): %v", err)
	}
	tgt, err := core.ParseDTD(schoolDTDText, "school")
	if err != nil {
		t.Fatalf("ParseDTD(target): %v", err)
	}
	att := core.UniformSim(src, tgt)
	res, err := core.Find(src, tgt, att, core.FindOptions{Heuristic: core.Random, Seed: 3, MaxRestarts: 60})
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if res.Embedding == nil {
		t.Fatalf("no embedding found")
	}
	doc, err := core.ParseXMLString(`
<db>
  <class><cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>
    </prereq></regular></type>
  </class>
</db>`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Embedding.Apply(doc)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := out.Tree.Validate(tgt); err != nil {
		t.Fatalf("type safety: %v", err)
	}
	back, err := res.Embedding.Invert(out.Tree)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	if !core.TreesEqual(doc, back) {
		t.Fatalf("round trip failed")
	}

	// Query preservation through the translator.
	tr, err := core.NewTranslator(res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.ParseQuery(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := tr.Translate(q)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	want := core.EvalQuery(q, doc.Root)
	got := auto.Eval(out.Tree.Root)
	if len(got) != len(want) {
		t.Errorf("translated query selects %d nodes, source query %d", len(got), len(want))
	}
	for _, n := range got {
		if _, ok := out.IDM[n.ID]; !ok {
			t.Errorf("translated result %q outside idM", n.Label)
		}
	}

	// XSLT generation works off the same embedding.
	fwd, err := core.ForwardXSLT(res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	viaXSLT, err := fwd.Run(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !core.TreesEqual(viaXSLT, out.Tree) {
		t.Error("XSLT forward differs from InstMap")
	}
	inv, err := core.InverseXSLT(res.Embedding)
	if err != nil {
		t.Fatal(err)
	}
	if text := inv.Serialize(); !strings.Contains(text, "xsl:stylesheet") {
		t.Error("serialization missing stylesheet element")
	}
}

func TestSchemaLiteralAPI(t *testing.T) {
	d, err := core.NewDTD("r",
		core.D("r", core.Star("a")),
		core.D("a", core.Str()),
	)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := core.GenerateDoc(d, rand.New(rand.NewSource(1)), xmltree.GenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.Validate(d); err != nil {
		t.Error(err)
	}
}

func TestLexicalSimAPI(t *testing.T) {
	src, _ := core.ParseDTD(classDTDText, "db")
	tgt, _ := core.ParseDTD(schoolDTDText, "school")
	att := core.LexicalSim(src, tgt, 0.5)
	if att.Get("cno", "cno") != 1 {
		t.Error("lexical matrix misses identical tags")
	}
	res, err := core.Find(src, tgt, att, core.FindOptions{Heuristic: core.QualityOrdered, Seed: 1, MaxRestarts: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding == nil {
		t.Skip("lexical matrix too restrictive for this pair; acceptable")
	}
	if res.Embedding.Lambda["cno"] != "cno" {
		t.Errorf("λ(cno) = %s, want cno under lexical att", res.Embedding.Lambda["cno"])
	}
}
