package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// Example demonstrates the full pipeline on a miniature pair of
// schemas: search for an embedding, map a document, invert it, and
// answer a translated query.
func Example() {
	src, err := core.ParseDTD(`
<!ELEMENT log (entry)*>
<!ELEMENT entry (when, what)>
<!ELEMENT when (#PCDATA)>
<!ELEMENT what (#PCDATA)>`, "log")
	if err != nil {
		log.Fatal(err)
	}
	tgt, err := core.ParseDTD(`
<!ELEMENT journal (header, entries)>
<!ELEMENT header (#PCDATA)>
<!ELEMENT entries (entry)*>
<!ELEMENT entry (when, what, severity)>
<!ELEMENT when (#PCDATA)>
<!ELEMENT what (#PCDATA)>
<!ELEMENT severity (#PCDATA)>`, "journal")
	if err != nil {
		log.Fatal(err)
	}
	att := core.UniformSim(src, tgt)
	res, err := core.Find(src, tgt, att, core.FindOptions{Heuristic: core.QualityOrdered, Seed: 1})
	if err != nil || res.Embedding == nil {
		log.Fatal("no embedding", err)
	}
	doc, _ := core.ParseXMLString(`<log><entry><when>09:00</when><what>boot</what></entry></log>`)
	out, err := res.Embedding.Apply(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("conforms:", out.Tree.Validate(tgt) == nil)
	back, _ := res.Embedding.Invert(out.Tree)
	fmt.Println("round trip:", core.TreesEqual(doc, back))
	tr, _ := core.NewTranslator(res.Embedding)
	q, _ := core.ParseQuery("entry/what/text()")
	auto, _ := tr.Translate(q)
	for _, n := range auto.Eval(out.Tree.Root) {
		fmt.Println("answer:", n.Text)
	}
	// Output:
	// conforms: true
	// round trip: true
	// answer: boot
}

// ExampleParseQuery shows the X_R syntax accepted by the parser.
func ExampleParseQuery() {
	q, err := core.ParseQuery(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.QueryString(q))
	// Output:
	// class[cno/text() = "CS331"]/((type/regular/prereq/class))*
}

// ExampleParseDTD shows content-model normalization: sugar like + and ?
// becomes the paper's five production shapes.
func ExampleParseDTD() {
	d, err := core.ParseDTD(`
<!ELEMENT r (a+, b?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>`, "r")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(d)
	// Output:
	// <!ELEMENT r.1 (a)*>
	// <!ELEMENT r.2 EMPTY>
	// <!ELEMENT r.3 (b | r.2)>
	// <!ELEMENT r (a, r.1, r.3)>
	// <!ELEMENT a (#PCDATA)>
	// <!ELEMENT b EMPTY>
}
