// Package core is the public API surface of the schema-embedding
// library: it re-exports the types and operations of the underlying
// packages — DTDs, XML documents, regular XPath, schema embeddings,
// instance mappings, query translation, XSLT generation, similarity
// matrices and embedding search — so applications program against one
// import.
//
// The typical flow, mirroring the paper:
//
//	src, _ := core.ParseDTD(srcDTDText, "")          // source schema S1
//	tgt, _ := core.ParseDTD(tgtDTDText, "")          // target schema S2
//	att := core.LexicalSim(src, tgt, 0.5)            // similarity matrix
//	res, _ := core.Find(src, tgt, att, core.FindOptions{})
//	σ := res.Embedding                               // schema embedding
//	out, _ := σ.Apply(doc)                           // σd: type-safe instance mapping
//	back, _ := σ.Invert(out.Tree)                    // σd⁻¹: invertibility
//	tr, _ := core.NewTranslator(σ)                   // query preservation
//	q, _ := core.ParseQuery(`class[cno/text() = "CS331"]/(type/regular/prereq/class)*`)
//	auto, _ := tr.Translate(q)                       // X_R query over S2, as an ANFA
//	answer := auto.Eval(out.Tree.Root)
package core

import (
	"context"
	"io"
	"math/rand"

	"repro/internal/anfa"
	"repro/internal/dtd"
	"repro/internal/embedding"
	"repro/internal/guard"
	"repro/internal/match"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/translate"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xslt"
)

// Schema types.
type (
	// DTD is an XML DTD schema in the paper's normal form.
	DTD = dtd.DTD
	// Production is one element type definition.
	Production = dtd.Production
	// Def pairs a type name with its production for schema literals.
	Def = dtd.Def
)

// Document types.
type (
	// Tree is an ordered, node-labeled XML document with node ids.
	Tree = xmltree.Tree
	// Node is an element or text node.
	Node = xmltree.Node
	// NodeID identifies a node.
	NodeID = xmltree.NodeID
)

// Query types.
type (
	// Query is a regular XPath (X_R) expression.
	Query = xpath.Expr
	// XRPath is an X_R path η1/.../ηk.
	XRPath = xpath.Path
	// ANFA is the annotated automaton representation of a translated
	// query.
	ANFA = anfa.Automaton
	// Program is a compiled, reusable evaluation plan for a query; see
	// CompileQuery.
	Program = xpath.Program
	// ANFAProgram is a compiled, reusable evaluation plan for a
	// translated ANFA (anfa.Compile / ANFA.Program).
	ANFAProgram = anfa.Program
	// ANFAOptOptions configures the schema-aware ANFA optimizer.
	ANFAOptOptions = anfa.OptOptions
	// ANFAOptStats reports what one optimizer run did.
	ANFAOptStats = anfa.OptStats
	// TranslateOptions configures translation post-processing
	// (NoOptimize disables the default-on ANFA optimizer).
	TranslateOptions = translate.Options
)

// OptimizeANFA runs the schema-aware optimizer over an automaton in
// place; translation applies it by default (see TranslateOptions).
func OptimizeANFA(a *ANFA, opt ANFAOptOptions) ANFAOptStats { return anfa.Optimize(a, opt) }

// Embedding types.
type (
	// Embedding is a schema embedding σ = (λ, path).
	Embedding = embedding.Embedding
	// EdgeRef identifies a source schema edge.
	EdgeRef = embedding.EdgeRef
	// MapResult is the result of the instance mapping σd with its node
	// id mapping idM.
	MapResult = embedding.Result
	// SimMatrix is the similarity matrix att.
	SimMatrix = embedding.SimMatrix
	// Translator translates X_R queries across an embedding.
	Translator = translate.Translator
	// Stylesheet is an executable XSLT stylesheet.
	Stylesheet = xslt.Stylesheet
)

// Search types.
type (
	// FindOptions configures embedding search.
	FindOptions = search.Options
	// FindResult reports a search outcome.
	FindResult = search.Result
	// Heuristic selects the search strategy.
	Heuristic = search.Heuristic
)

// Search heuristics.
const (
	Random         = search.Random
	QualityOrdered = search.QualityOrdered
	IndepSet       = search.IndepSet
	Exact          = search.Exact
)

// Resource-limit types (see internal/guard).
type (
	// Limits bounds parser and generator resource use: recursion depth,
	// input bytes, declared types and document nodes. The zero value
	// selects defaults; negative fields disable a bound.
	Limits = guard.Limits
	// LimitError is the structured error returned when a Limits bound
	// is exceeded.
	LimitError = guard.LimitError
)

// DefaultLimits returns the default resource bounds.
func DefaultLimits() Limits { return guard.Default() }

// UnlimitedLimits returns bounds that disable every limit.
func UnlimitedLimits() Limits { return guard.Unlimited() }

// Typed cancellation errors from FindCtx. Each also matches the
// corresponding context error under errors.Is.
var (
	// ErrDeadline reports a search cut short by a context deadline.
	ErrDeadline = search.ErrDeadline
	// ErrCanceled reports a search cut short by context cancellation.
	ErrCanceled = search.ErrCanceled
)

// StrChild is the pseudo child naming str edges in EdgeRef.
const StrChild = embedding.StrChild

// Schema construction.

// NewDTD builds a schema from ordered definitions; see dtd.New.
func NewDTD(root string, defs ...Def) (*DTD, error) { return dtd.New(root, defs...) }

// D builds a definition for NewDTD.
func D(name string, p Production) Def { return dtd.D(name, p) }

// Production constructors.
var (
	Str    = dtd.Str
	Empty  = dtd.Empty
	Concat = dtd.Concat
	Disj   = dtd.Disj
	Star   = dtd.Star
)

// ParseDTD parses DTD element declarations (normalizing arbitrary
// content models); root "" selects the first declared element.
func ParseDTD(src, root string) (*DTD, error) { return dtd.Parse(src, root) }

// ParseDTDLimits is ParseDTD with explicit resource bounds.
func ParseDTDLimits(src, root string, lim Limits) (*DTD, error) {
	return dtd.ParseLimits(src, root, lim)
}

// Documents.

// ParseXML reads an XML document.
func ParseXML(r io.Reader) (*Tree, error) { return xmltree.Parse(r) }

// ParseXMLLimits is ParseXML with explicit resource bounds.
func ParseXMLLimits(r io.Reader, lim Limits) (*Tree, error) { return xmltree.ParseLimits(r, lim) }

// ParseXMLString reads an XML document from a string.
func ParseXMLString(s string) (*Tree, error) { return xmltree.ParseString(s) }

// TreesEqual is the paper's tree equality (value isomorphism).
func TreesEqual(a, b *Tree) bool { return xmltree.Equal(a, b) }

// GenerateDoc produces a random instance of a consistent schema.
func GenerateDoc(d *DTD, r *rand.Rand, opts xmltree.GenOptions) (*Tree, error) {
	return xmltree.Generate(d, r, opts)
}

// Queries.

// ParseQuery parses an X_R (or X) query.
func ParseQuery(src string) (Query, error) { return xpath.Parse(src) }

// ParseQueryLimits is ParseQuery with explicit resource bounds.
func ParseQueryLimits(src string, lim Limits) (Query, error) { return xpath.ParseLimits(src, lim) }

// EvalQuery evaluates a query at a context node.
func EvalQuery(q Query, ctx *Node) []*Node { return xpath.Eval(q, ctx) }

// CompileQuery compiles a query into a reusable Program: one
// compilation, many Run calls, safe for concurrent use, with pooled
// per-evaluation scratch. This is the data-plane form of EvalQuery.
func CompileQuery(q Query) *Program { return xpath.Compile(q) }

// QueryString renders a query.
func QueryString(q Query) string { return xpath.String(q) }

// Embeddings.

// NewEmbedding returns an empty embedding shell for manual
// construction; use MapType/SetPath then Validate.
func NewEmbedding(src, tgt *DTD) *Embedding { return embedding.New(src, tgt) }

// Ref builds an EdgeRef with occurrence 1.
func Ref(parent, child string) EdgeRef { return embedding.Ref(parent, child) }

// Similarity matrices.

// UniformSim returns the unrestricted att (all pairs score 1).
func UniformSim(src, tgt *DTD) *SimMatrix { return embedding.UniformSim(src, tgt) }

// LexicalSim scores tag-name pairs with edit-distance and trigram
// similarity, dropping scores below threshold.
func LexicalSim(src, tgt *DTD, threshold float64) *SimMatrix {
	return match.Lexical(src, tgt, threshold)
}

// Search.

// Find searches for a valid embedding; see search.Find.
func Find(src, tgt *DTD, att *SimMatrix, opts FindOptions) (*FindResult, error) {
	return search.Find(src, tgt, att, opts)
}

// FindCtx is Find with cancellation and deadline support: when ctx
// ends, the search stops at the next loop boundary and returns
// ErrDeadline or ErrCanceled alongside partial-progress statistics
// (and the best embedding found so far, if any).
func FindCtx(ctx context.Context, src, tgt *DTD, att *SimMatrix, opts FindOptions) (*FindResult, error) {
	return search.FindCtx(ctx, src, tgt, att, opts)
}

// Query translation.

// NewTranslator validates the embedding and returns a query
// translator implementing Tr of Theorem 4.2, with the schema-aware
// ANFA optimizer on (the default).
func NewTranslator(e *Embedding) (*Translator, error) { return translate.New(e) }

// NewTranslatorWithOptions is NewTranslator with explicit
// translation options.
func NewTranslatorWithOptions(e *Embedding, opts TranslateOptions) (*Translator, error) {
	return translate.NewWithOptions(e, opts)
}

// Translation caching.
type (
	// TranslationCache memoizes query translation per
	// (embedding, query) with LRU eviction and per-key single-flight;
	// safe for concurrent use.
	TranslationCache = translate.Cache
	// TranslationCacheStats is a snapshot of cache counters.
	TranslationCacheStats = translate.CacheStats
)

// NewTranslationCache returns a translation cache holding up to
// capacity entries (a small default when capacity <= 0).
func NewTranslationCache(capacity int) *TranslationCache { return translate.NewCache(capacity) }

// Batch migration (see internal/pipeline).
type (
	// BatchDoc is one named input (and optional output) of a batch run.
	BatchDoc = pipeline.Doc
	// BatchOptions configures a batch run: direction, worker count,
	// parse limits.
	BatchOptions = pipeline.Options
	// BatchResult is the per-document outcome, in input order.
	BatchResult = pipeline.DocResult
	// BatchStats aggregates a batch run with throughput accessors.
	BatchStats = pipeline.Stats
	// BatchError is a per-document failure tagged with its pipeline
	// stage.
	BatchError = pipeline.DocError
)

// Batch directions.
const (
	// BatchForward migrates source documents through σd.
	BatchForward = pipeline.Forward
	// BatchInverse recovers source documents through σd⁻¹.
	BatchInverse = pipeline.Inverse
)

// Batch pipeline stages, for error classification.
const (
	BatchStageRead     = pipeline.StageRead
	BatchStageParse    = pipeline.StageParse
	BatchStageMap      = pipeline.StageMap
	BatchStageValidate = pipeline.StageValidate
	BatchStageWrite    = pipeline.StageWrite
)

// Streaming migration (see embedding.StreamApply). The batch pipeline
// uses this engine by default; these re-exports serve single-document
// callers that want bounded memory without the batch machinery.
type (
	// StreamProgram is a compiled, reusable streaming form of σd: one
	// CompileStream, many Run calls, safe for concurrent use.
	StreamProgram = embedding.StreamProgram
	// StreamOptions configures one streaming run (limits, metrics).
	StreamOptions = embedding.StreamOptions
	// StreamStats reports one streaming run's token/byte/buffering
	// accounting.
	StreamStats = embedding.StreamStats
	// StreamError tags a streaming failure with its stage
	// ("parse", "map" or "write").
	StreamError = embedding.StreamError
)

// CompileStream compiles the embedding's instance mapping σd into a
// streaming program: documents transform token-by-token in O(depth)
// memory, buffering subtrees only for productions whose target fragment
// reorders source children.
func CompileStream(e *Embedding) (*StreamProgram, error) { return e.CompileStream() }

// StreamMigrate applies σd to one document as a stream: XML in from r,
// migrated XML out to w, byte-identical to Apply + String.
func StreamMigrate(ctx context.Context, e *Embedding, r io.Reader, w io.Writer) (StreamStats, error) {
	return embedding.StreamApply(ctx, e, r, w)
}

// RunBatch migrates documents through the embedding with a bounded
// worker pool; per-document failures are isolated in the results.
func RunBatch(ctx context.Context, e *Embedding, docs []BatchDoc, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	return pipeline.Run(ctx, e, docs, opts)
}

// BatchDirDocs lists *.xml files of dir (name order) as batch inputs,
// writing outputs of the same base name under outDir ("" discards).
func BatchDirDocs(dir, outDir string) ([]BatchDoc, error) { return pipeline.DirDocs(dir, outDir) }

// CancelError is the typed error surfaced by context-aware operations
// (ApplyCtx, InvertCtx, TranslateCtx, RunCtx, RunBatch) when their
// context ends; it matches the context's own error under errors.Is.
type CancelError = guard.CancelError

// Compose builds σ2 ∘ σ1, the direct embedding along a two-hop mapping
// chain (see embedding.Compose).
func Compose(s1, s2 *Embedding) (*Embedding, error) { return embedding.Compose(s1, s2) }

// XSLT generation.

// ForwardXSLT compiles σd to an executable stylesheet.
func ForwardXSLT(e *Embedding) (*Stylesheet, error) { return xslt.ForwardStylesheet(e) }

// InverseXSLT compiles σd⁻¹ to an executable stylesheet.
func InverseXSLT(e *Embedding) (*Stylesheet, error) { return xslt.InverseStylesheet(e) }
