package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the four command-line tools and drives the
// full workflow end to end: find an embedding between two DTD files,
// map a document forward (directly and via generated XSLT), run a
// translated query, and invert the mapping back to the original.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	dir := t.TempDir()
	build := exec.Command("go", "build", "-o", dir, "./cmd/...")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	classDTD := write("class.dtd", `
<!ELEMENT db (class)*>
<!ELEMENT class (cno, title, type)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT type (regular | project)>
<!ELEMENT regular (prereq)>
<!ELEMENT project (#PCDATA)>
<!ELEMENT prereq (class)*>
`)
	schoolDTD := write("school.dtd", `
<!ELEMENT school (courses, students)>
<!ELEMENT courses (current, history)>
<!ELEMENT current (course)*>
<!ELEMENT history (course)*>
<!ELEMENT course (basic, category)>
<!ELEMENT basic (cno, credit, class)>
<!ELEMENT cno (#PCDATA)>
<!ELEMENT credit (#PCDATA)>
<!ELEMENT class (semester)*>
<!ELEMENT semester (title, year, term, instructor)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT term (#PCDATA)>
<!ELEMENT instructor (#PCDATA)>
<!ELEMENT category (mandatory | advanced)>
<!ELEMENT mandatory (regular | lab)>
<!ELEMENT lab (#PCDATA)>
<!ELEMENT advanced (project | thesis)>
<!ELEMENT thesis (#PCDATA)>
<!ELEMENT project (#PCDATA)>
<!ELEMENT regular (required)>
<!ELEMENT required (prereq)>
<!ELEMENT prereq (course)*>
<!ELEMENT students (student)*>
<!ELEMENT student (ssn, name, gpa, taking)>
<!ELEMENT ssn (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT gpa (#PCDATA)>
<!ELEMENT taking (cno)*>
`)
	doc := write("doc.xml", `
<db>
  <class><cno>CS331</cno><title>DB</title>
    <type><regular><prereq>
      <class><cno>CS210</cno><title>Algo</title><type><project>p</project></type></class>
    </prereq></regular></type>
  </class>
</db>`)

	run := func(bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(dir, bin), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", bin, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	mapping := filepath.Join(dir, "map.xse")
	run("xse-embed", "-source", classDTD, "-target", schoolDTD, "-att", "uniform", "-seed", "3", "-o", mapping)
	if data, _ := os.ReadFile(mapping); !strings.Contains(string(data), "type db -> school") {
		t.Fatalf("mapping file lacks root assignment:\n%s", data)
	}

	common := []string{"-mapping", mapping, "-source", classDTD, "-target", schoolDTD}
	forward := run("xse-map", append(common, doc)...)
	if !strings.Contains(forward, "<school>") {
		t.Fatalf("forward output:\n%s", forward)
	}
	out := write("out.xml", forward)

	viaXSLT := run("xse-map", append(common, "-via-xslt", doc)...)
	if viaXSLT != forward {
		t.Error("XSLT-driven output differs from InstMap output")
	}

	inverse := run("xse-map", append(common, "-invert", out)...)
	if !strings.Contains(inverse, "<cno>CS331</cno>") || !strings.Contains(inverse, "<cno>CS210</cno>") {
		t.Fatalf("inverse output:\n%s", inverse)
	}

	sheet := run("xse-map", append(common, "-xslt")...)
	if !strings.Contains(sheet, "xsl:stylesheet") || !strings.Contains(sheet, `match="class"`) {
		t.Errorf("stylesheet output:\n%.400s", sheet)
	}

	query := run("xse-query", append(common,
		"-query", `class[cno/text() = "CS331"]/(type/regular/prereq/class)*`,
		"-source-doc", doc)...)
	if !strings.Contains(query, "Q(T) = idM(Tr(Q)(σd(T))): true") {
		t.Fatalf("query preservation check failed:\n%s", query)
	}

	answers := run("xse-query", append(common, "-query", ".//cno/text()", "-doc", out)...)
	if !strings.Contains(answers, `"CS331"`) || !strings.Contains(answers, `"CS210"`) {
		t.Fatalf("query answers:\n%s", answers)
	}

	bench := run("xse-bench", "-exp", "e4", "-quick")
	if !strings.Contains(bench, "E4:") {
		t.Fatalf("bench output:\n%s", bench)
	}
}
