package repro

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var listenLine = regexp.MustCompile(`debug server listening on http://(\S+)/metrics`)

// TestCLITelemetryEndToEnd is the acceptance path for the telemetry
// layer: a batch run with -debug-addr :0 serves live Prometheus
// metrics over HTTP while running, and -trace-out writes a Chrome
// trace with parse, map and encode spans for every document.
func TestCLITelemetryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	dir := makeBatchDir(t, 4)
	outDir := filepath.Join(t.TempDir(), "out")
	traceFile := filepath.Join(t.TempDir(), "trace.json")

	// -tree: this test pins the tree path's per-stage histograms and
	// spans; the streaming default has its own xse_stream_* instruments
	// (covered in internal/pipeline and internal/embedding).
	cmd := exec.Command(bin, append(xsemapFixtureArgs(),
		"-batch", dir, "-out", outDir, "-j", "2", "-tree",
		"-debug-addr", "127.0.0.1:0",
		"-debug-linger", "5s",
		"-trace-out", traceFile,
	)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The CLI announces the resolved :0 address on stderr before the
	// batch starts; scrape it during the linger window.
	var addr string
	var tail strings.Builder
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		tail.WriteString(line + "\n")
		if m := listenLine.FindStringSubmatch(line); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no debug-server announcement on stderr:\n%s", tail.String())
	}

	get := func(path string) string {
		t.Helper()
		var lastErr error
		for i := 0; i < 50; i++ {
			resp, err := http.Get("http://" + addr + path)
			if err == nil {
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil {
					return string(body)
				}
			}
			lastErr = err
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("GET %s never succeeded: %v", path, lastErr)
		return ""
	}

	metrics := waitFor(t, func() (string, bool) {
		body := get("/metrics")
		return body, strings.Contains(body, "xse_pipeline_docs_total 4")
	})
	checkPrometheusShape(t, metrics)
	for _, want := range []string{
		"# TYPE xse_pipeline_docs_total counter",
		"xse_pipeline_docs_ok_total 4",
		"# TYPE xse_pipeline_parse_seconds histogram",
		`xse_pipeline_parse_seconds_bucket{le="+Inf"} 4`,
		"xse_translate_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	var jsonOut []map[string]any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &jsonOut); err != nil {
		t.Errorf("/metrics.json is not valid JSON: %v", err)
	}
	if !strings.Contains(get("/debug/vars"), `"xse"`) {
		t.Error("/debug/vars does not publish the xse expvar")
	}

	// Drain stderr so the child never blocks on a full pipe, then wait.
	go io.Copy(io.Discard, stderr)
	if err := cmd.Wait(); err != nil {
		t.Fatalf("xse-map exited with %v", err)
	}

	// The trace must hold parse, map and encode spans for each of the
	// four documents, on the workers' lanes.
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int64   `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	byName := map[string]int{}
	lanes := map[int64]bool{}
	for _, e := range trace.TraceEvents {
		byName[e.Name]++
		if e.Name == "pipeline.worker" {
			lanes[e.Tid] = true
		}
	}
	for _, stage := range []string{"pipeline.parse", "pipeline.map", "pipeline.encode", "pipeline.doc"} {
		if byName[stage] != 4 {
			t.Errorf("trace has %d %s spans, want 4 (all: %v)", byName[stage], stage, byName)
		}
	}
	if len(lanes) != 2 {
		t.Errorf("worker spans occupy %d lanes, want 2 (-j 2)", len(lanes))
	}
}

// waitFor polls cond until it reports done or a deadline passes,
// returning the last observed value.
func waitFor(t *testing.T, cond func() (string, bool)) string {
	t.Helper()
	deadline := time.Now().Add(4 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		v, done := cond()
		last = v
		if done {
			return v
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("condition never satisfied; last value:\n%s", last)
	return last
}

// checkPrometheusShape validates exposition-format invariants that a
// real scraper depends on: every sample line's family has exactly one
// preceding HELP and TYPE, and histogram bucket counts are cumulative
// and end in +Inf.
func checkPrometheusShape(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{}
	helped := map[string]int{}
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			helped[strings.Fields(line)[2]]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			typed[f[2]] = f[3]
			continue
		}
		if line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			t.Errorf("sample %q has no TYPE header", line)
		}
	}
	for family, n := range helped {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", family, n)
		}
	}
}

// TestCLIProfileFlags: -cpuprofile and -memprofile write non-empty
// pprof files on a successful single-document run.
func TestCLIProfileFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb")
	mem := filepath.Join(dir, "mem.pb")
	out, code := runExit(t, bin, append(xsemapFixtureArgs(),
		"-cpuprofile", cpu, "-memprofile", mem, "testdata/xsemap/doc.xml")...)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, f := range []string{cpu, mem} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

// TestCLITraceOnFatalExit: a run that dies on a bad document still
// flushes the trace file, because fatal exits route through the
// telemetry cleanup hook.
func TestCLITraceOnFatalExit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped with -short")
	}
	bin := buildTool(t, "xse-map")
	bad := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(bad, []byte("<db><class>"), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out, code := runExit(t, bin, append(xsemapFixtureArgs(), "-trace-out", traceFile, bad)...)
	if code != 3 {
		t.Fatalf("exit = %d, want 3\n%s", code, out)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace not written on fatal exit: %v", err)
	}
	var trace map[string]any
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Errorf("trace file invalid after fatal exit: %v", err)
	}
}
